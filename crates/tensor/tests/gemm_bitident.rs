//! Bit-identity regressions pinning the packed GEMM to the pre-refactor
//! kernels.
//!
//! The reference implementations below are the historical loop nests
//! verbatim (the `BLOCK`-blocked i-k-j `matmul`, the k-outer scatter
//! `matmul_tn`, the dot-product-per-element `matmul_nt`, and the
//! iterator-sum `matvec`). The packed register-tiled kernel must
//! reproduce their output `to_bits`-exactly — including the
//! structural-zero skip semantics of each variant and the signed-zero /
//! non-finite corner cases those make observable — on random shapes with
//! zero-heavy, mixed-magnitude values. The fused-im2col conv forward and
//! weight gradient are likewise pinned to explicit `im2col` + the
//! matching historical product.

use dv_tensor::conv::{im2col_into, Conv2dGeom};
use dv_tensor::gemm;
use dv_tensor::matmul::{matmul_into, matmul_nt_into, matmul_tn, matvec};
use dv_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BLOCK: usize = 64;

/// Pre-refactor `matmul_into` (sequential arm), kept verbatim as oracle.
fn reference_matmul_into(ad: &[f32], m: usize, k: usize, bd: &[f32], n: usize, out: &mut [f32]) {
    out.fill(0.0);
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        let rows = &mut out[i0 * n..i1 * n];
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for i in i0..i1 {
                let crow = &mut rows[(i - i0) * n..(i - i0 + 1) * n];
                for kk in k0..k1 {
                    let aik = ad[i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &bd[kk * n..(kk + 1) * n];
                    for (c, &bv) in crow.iter_mut().zip(brow) {
                        *c += aik * bv;
                    }
                }
            }
        }
    }
}

/// Pre-refactor `matmul_tn`, kept verbatim as oracle.
fn reference_matmul_tn(ad: &[f32], k: usize, m: usize, bd: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for kk in 0..k {
        let arow = &ad[kk * m..(kk + 1) * m];
        let brow = &bd[kk * n..(kk + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut out[i * n..(i + 1) * n];
            for (c, &bv) in crow.iter_mut().zip(brow) {
                *c += av * bv;
            }
        }
    }
    out
}

/// Pre-refactor `matmul_nt_into` (sequential arm), kept verbatim as oracle.
fn reference_matmul_nt_into(ad: &[f32], m: usize, k: usize, bd: &[f32], n: usize, out: &mut [f32]) {
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let crow = &mut out[i * n..(i + 1) * n];
        for (j, c) in crow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *c = acc;
        }
    }
}

/// Pre-refactor `matvec`, kept verbatim as oracle.
fn reference_matvec(ad: &[f32], m: usize, k: usize, xd: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m];
    for (i, o) in out.iter_mut().enumerate() {
        let row = &ad[i * k..(i + 1) * k];
        *o = row.iter().zip(xd).map(|(a, b)| a * b).sum();
    }
    out
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Zero-heavy, mixed-magnitude values: roughly a third exact zeros (both
/// signs) so every skip path is exercised, the rest spanning several
/// orders of magnitude so accumulation-order differences would show.
fn randv(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len)
        .map(|_| {
            let mag: f32 = rng.gen_range(-2.5f32..2.5);
            match rng.gen_range(0u32..6) {
                0 => 0.0,
                1 => -0.0,
                2 => mag * 1e-4,
                3 => mag * 1e4,
                _ => mag,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn packed_matmul_is_bit_identical_to_reference(
        (m, k, n) in (1usize..=24, 1usize..=24, 1usize..=24),
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = randv(&mut rng, m * k);
        let b = randv(&mut rng, k * n);
        let mut want = vec![0.0f32; m * n];
        reference_matmul_into(&a, m, k, &b, n, &mut want);
        let mut got = vec![0.0f32; m * n];
        matmul_into(&a, m, k, &b, n, &mut got);
        prop_assert_eq!(bits(&got), bits(&want), "{}x{}x{}", m, k, n);
    }

    #[test]
    fn packed_matmul_tn_is_bit_identical_to_reference(
        (k, m, n) in (1usize..=24, 1usize..=24, 1usize..=24),
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = randv(&mut rng, k * m); // stored [k, m]
        let b = randv(&mut rng, k * n);
        let want = reference_matmul_tn(&a, k, m, &b, n);
        let got = matmul_tn(
            &Tensor::from_vec(a, &[k, m]),
            &Tensor::from_vec(b, &[k, n]),
        );
        prop_assert_eq!(bits(got.data()), bits(&want), "{}x{}x{}", k, m, n);
    }

    #[test]
    fn packed_matmul_nt_is_bit_identical_to_reference(
        (m, k, n) in (1usize..=24, 1usize..=24, 1usize..=24),
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = randv(&mut rng, m * k);
        let b = randv(&mut rng, n * k); // stored [n, k]
        let mut want = vec![0.0f32; m * n];
        reference_matmul_nt_into(&a, m, k, &b, n, &mut want);
        let mut got = vec![0.0f32; m * n];
        matmul_nt_into(&a, m, k, &b, n, &mut got);
        prop_assert_eq!(bits(&got), bits(&want), "{}x{}x{}", m, k, n);
    }

    #[test]
    fn packed_matvec_is_bit_identical_to_reference(
        (m, k) in (1usize..=24, 1usize..=24),
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = randv(&mut rng, m * k);
        let x = randv(&mut rng, k);
        let want = reference_matvec(&a, m, k, &x);
        let got = matvec(
            &Tensor::from_vec(a, &[m, k]),
            &Tensor::from_vec(x, &[k]),
        );
        prop_assert_eq!(bits(got.data()), bits(&want), "{}x{}", m, k);
    }

    #[test]
    fn fused_conv_forward_is_bit_identical_to_explicit_im2col(
        (c, h, w, ks, pad, oc) in (1usize..=3, 3usize..=9, 3usize..=9, 1usize..=3, 0usize..=1, 1usize..=5),
        seed in 0u64..1_000_000,
    ) {
        prop_assume!(h + 2 * pad >= ks && w + 2 * pad >= ks);
        let geom = Conv2dGeom { in_channels: c, in_h: h, in_w: w, kernel: ks, stride: 1, pad };
        let mut rng = StdRng::seed_from_u64(seed);
        let image = randv(&mut rng, c * h * w);
        let weight = randv(&mut rng, oc * geom.col_rows());

        // Explicit lowering + historical matmul.
        let mut cols = vec![0.0f32; geom.col_rows() * geom.col_cols()];
        im2col_into(&image, &geom, &mut cols);
        let mut want = vec![0.0f32; oc * geom.col_cols()];
        reference_matmul_into(&weight, oc, geom.col_rows(), &cols, geom.col_cols(), &mut want);

        // Fused pack: no column matrix.
        let mut got = vec![0.0f32; oc * geom.col_cols()];
        gemm::conv2d_into(&weight, oc, &image, &geom, &mut got);
        prop_assert_eq!(bits(&got), bits(&want), "conv {}x{}x{} k{} p{}", c, h, w, ks, pad);

        // Weight gradient: fused transposed pack vs reference nt on cols.
        let g = randv(&mut rng, oc * geom.col_cols());
        let mut want = vec![0.0f32; oc * geom.col_rows()];
        reference_matmul_nt_into(&g, oc, geom.col_cols(), &cols, geom.col_rows(), &mut want);
        let mut got = vec![0.0f32; oc * geom.col_rows()];
        gemm::conv2d_grad_weight_into(&g, oc, &image, &geom, &mut got);
        prop_assert_eq!(bits(&got), bits(&want), "grad {}x{}x{} k{} p{}", c, h, w, ks, pad);
    }
}

/// Larger-than-`KC`/`MC` shapes hit the cache-blocking and parallel-split
/// edges; pin them against the references directly (both sequential and
/// under a multi-thread pool — the references are sequential oracles).
#[test]
fn blocking_edges_are_bit_identical_to_reference() {
    let mut rng = StdRng::seed_from_u64(99);
    for &(m, k, n) in &[(65, 300, 33), (130, 70, 120), (70, 65, 130), (1, 513, 9)] {
        let a = randv(&mut rng, m * k);
        let b = randv(&mut rng, k * n);
        let mut want = vec![0.0f32; m * n];
        reference_matmul_into(&a, m, k, &b, n, &mut want);
        let mut got = vec![0.0f32; m * n];
        matmul_into(&a, m, k, &b, n, &mut got);
        assert_eq!(bits(&got), bits(&want), "matmul {m}x{k}x{n}");

        let bt = randv(&mut rng, n * k);
        let mut want = vec![0.0f32; m * n];
        reference_matmul_nt_into(&a, m, k, &bt, n, &mut want);
        let mut got = vec![0.0f32; m * n];
        matmul_nt_into(&a, m, k, &bt, n, &mut got);
        assert_eq!(bits(&got), bits(&want), "matmul_nt {m}x{k}x{n}");
    }
}

/// Non-finite corner cases where the per-variant skip semantics are
/// observable: `matmul` skips `0.0 * inf` (keeping the other terms
/// finite) while `matmul_nt` faithfully produces NaN.
#[test]
fn skip_semantics_match_reference_on_nonfinite_inputs() {
    let a = [0.0f32, -1.0, f32::INFINITY, 0.0];
    let b = [f32::INFINITY, 2.0, 0.0, -0.0];
    let mut want = vec![0.0f32; 4];
    reference_matmul_into(&a, 2, 2, &b, 2, &mut want);
    let mut got = vec![0.0f32; 4];
    matmul_into(&a, 2, 2, &b, 2, &mut got);
    assert_eq!(bits(&got), bits(&want), "matmul skip on non-finite");

    let mut want = vec![0.0f32; 4];
    reference_matmul_nt_into(&a, 2, 2, &b, 2, &mut want);
    let mut got = vec![0.0f32; 4];
    matmul_nt_into(&a, 2, 2, &b, 2, &mut got);
    assert_eq!(bits(&got), bits(&want), "matmul_nt no-skip on non-finite");
}

/// Signed zeros make the skip observable without non-finite values: a row
/// of exact zeros against a column with a negative entry yields `+0.0`
/// when skipped but would pick up `-0.0` contributions otherwise.
#[test]
fn signed_zero_rows_stay_positive_zero_under_skip() {
    let a = [0.0f32, -0.0];
    let b = [-5.0f32, 3.0];
    let mut want = vec![0.0f32; 1];
    reference_matmul_into(&a, 1, 2, &b, 1, &mut want);
    let mut got = vec![0.0f32; 1];
    matmul_into(&a, 1, 2, &b, 1, &mut got);
    assert_eq!(bits(&got), bits(&want));
    assert_eq!(got[0].to_bits(), 0.0f32.to_bits());
}

/// With the `simd` feature on, the AVX kernel must produce the same bits
/// as the forced-scalar kernel on every variant and shape class
/// (full tiles, edge tiles, the m = 1 dense taps).
#[cfg(feature = "simd")]
mod simd_parity {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn simd_and_scalar_kernels_agree_bitwise(
            (m, k, n) in (1usize..=40, 1usize..=40, 1usize..=40),
            seed in 0u64..1_000_000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = randv(&mut rng, m * k);
            let b = randv(&mut rng, k * n);
            let bt = randv(&mut rng, n * k);

            gemm::force_scalar_kernels(true);
            let mut scalar = vec![0.0f32; m * n];
            matmul_into(&a, m, k, &b, n, &mut scalar);
            let mut scalar_nt = vec![0.0f32; m * n];
            matmul_nt_into(&a, m, k, &bt, n, &mut scalar_nt);
            gemm::force_scalar_kernels(false);

            let mut simd = vec![0.0f32; m * n];
            matmul_into(&a, m, k, &b, n, &mut simd);
            prop_assert_eq!(bits(&simd), bits(&scalar), "matmul {}x{}x{}", m, k, n);
            let mut simd_nt = vec![0.0f32; m * n];
            matmul_nt_into(&a, m, k, &bt, n, &mut simd_nt);
            prop_assert_eq!(bits(&simd_nt), bits(&scalar_nt), "nt {}x{}x{}", m, k, n);
        }
    }
}
