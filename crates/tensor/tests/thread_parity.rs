//! Thread-count parity regressions for the parallel tensor kernels.
//!
//! `matmul`, `matmul_nt` and `im2col` fan work out across the
//! `dv-runtime` pool above a size threshold; every output element is
//! still computed exactly once with a fixed accumulation order, so the
//! results must be bit-identical to the single-thread (sequential) path.

use dv_runtime::Pool;
use dv_tensor::conv::{im2col, Conv2dGeom};
use dv_tensor::matmul::{matmul, matmul_nt};
use dv_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_bits_equal(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: mismatch at element {i}");
    }
}

#[test]
fn matmul_is_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(11);
    // 150x40 * 40x60: several row blocks, well past the FLOP threshold.
    let a = Tensor::randn(&mut rng, &[150, 40], 1.0);
    let b = Tensor::randn(&mut rng, &[40, 60], 1.0);
    let c1 = Pool::new(1).install(|| matmul(&a, &b));
    let c4 = Pool::new(4).install(|| matmul(&a, &b));
    assert_bits_equal(&c1, &c4, "matmul");
}

#[test]
fn matmul_nt_is_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(12);
    let a = Tensor::randn(&mut rng, &[96, 48], 1.0);
    let b = Tensor::randn(&mut rng, &[80, 48], 1.0);
    let c1 = Pool::new(1).install(|| matmul_nt(&a, &b));
    let c4 = Pool::new(4).install(|| matmul_nt(&a, &b));
    assert_bits_equal(&c1, &c4, "matmul_nt");
}

#[test]
fn im2col_is_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(13);
    let geom = Conv2dGeom {
        in_channels: 8,
        in_h: 20,
        in_w: 20,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    // 8*3*3 = 72 rows x 400 cols = 28800 elements: past the threshold.
    let image = Tensor::randn(&mut rng, &[8, 20, 20], 1.0);
    let c1 = Pool::new(1).install(|| im2col(&image, &geom));
    let c4 = Pool::new(4).install(|| im2col(&image, &geom));
    assert_bits_equal(&c1, &c4, "im2col");
}

#[test]
fn fused_conv_gemm_is_bit_identical_across_thread_counts() {
    // 96 output channels > MC drives the packed GEMM onto the pool while
    // the B panel is gathered straight from the image.
    let mut rng = StdRng::seed_from_u64(14);
    let geom = Conv2dGeom {
        in_channels: 8,
        in_h: 20,
        in_w: 20,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    let image = Tensor::randn(&mut rng, &[8, 20, 20], 1.0);
    let weight = Tensor::randn(&mut rng, &[96, geom.col_rows()], 1.0);
    let run = || {
        let mut out = vec![0.0f32; 96 * geom.col_cols()];
        dv_tensor::gemm::conv2d_into(weight.data(), 96, image.data(), &geom, &mut out);
        Tensor::from_vec(out, &[96, geom.col_cols()])
    };
    let c1 = Pool::new(1).install(run);
    let c4 = Pool::new(4).install(run);
    assert_bits_equal(&c1, &c4, "conv2d_into");
}

#[test]
fn packed_gemm_panels_are_bit_identical_across_thread_counts() {
    // Deep k (> KC) and wide n (> NC) cross every cache-blocking edge
    // while MC-row chunks fan out across the pool.
    let mut rng = StdRng::seed_from_u64(15);
    let a = Tensor::randn(&mut rng, &[130, 300], 1.0);
    let b = Tensor::randn(&mut rng, &[300, 520], 1.0);
    let c1 = Pool::new(1).install(|| matmul(&a, &b));
    let c4 = Pool::new(4).install(|| matmul(&a, &b));
    assert_bits_equal(&c1, &c4, "packed gemm panels");
}
