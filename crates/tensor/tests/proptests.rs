//! Property tests for the tensor substrate.

use dv_tensor::conv::{col2im, im2col, Conv2dGeom};
use dv_tensor::matmul::{matmul, matmul_nt, matmul_tn, transpose};
use dv_tensor::stats::{log_sum_exp, quantile};
use dv_tensor::Tensor;
use proptest::prelude::*;

fn tensor2(max: usize) -> impl Strategy<Value = Tensor> {
    (1..=max, 1..=max).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f32..=10.0, m * n)
            .prop_map(move |data| Tensor::from_vec(data, &[m, n]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor2(5),
        seed in 0u64..1000,
    ) {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let b = Tensor::randn::<rand::rngs::StdRng>(&mut rng, &[k, 3], 1.0);
        let c = Tensor::randn::<rand::rngs::StdRng>(&mut rng, &[k, 3], 1.0);
        let lhs = matmul(&a, &b.add(&c));
        let rhs = matmul(&a, &b).add(&matmul(&a, &c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-2 * (1.0 + x.abs()), "{m}x{k}: {x} vs {y}");
        }
    }

    #[test]
    fn tn_and_nt_agree_with_explicit_transposes(a in tensor2(5), b in tensor2(5)) {
        // Make shapes compatible by transposing as needed.
        let k = a.shape().dim(0);
        let bt = if b.shape().dim(0) == k { b.clone() } else { return Ok(()); };
        let lhs = matmul_tn(&a, &bt);
        let rhs = matmul(&transpose(&a), &bt);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + x.abs()));
        }
        let lhs = matmul_nt(&transpose(&a), &transpose(&bt));
        let rhs = matmul(&transpose(&a), &bt);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn im2col_col2im_adjointness(
        (c, h, w, k) in (1usize..=2, 4usize..=7, 4usize..=7, 2usize..=3),
        seed in 0u64..1000,
    ) {
        let geom = Conv2dGeom { in_channels: c, in_h: h, in_w: w, kernel: k, stride: 1, pad: 0 };
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        let x = Tensor::randn(&mut rng, &[c, h, w], 1.0);
        let y = Tensor::randn(&mut rng, &[geom.col_rows(), geom.col_cols()], 1.0);
        let lhs = im2col(&x, &geom).mul(&y).sum();
        let rhs = x.mul(&col2im(&y, &geom)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn stack_then_index_outer_is_identity(items in proptest::collection::vec(
        proptest::collection::vec(-5.0f32..=5.0, 6), 1..=5)) {
        let tensors: Vec<Tensor> = items
            .iter()
            .map(|v| Tensor::from_vec(v.clone(), &[2, 3]))
            .collect();
        let stacked = Tensor::stack(&tensors);
        for (i, t) in tensors.iter().enumerate() {
            prop_assert_eq!(&stacked.index_outer(i), t);
        }
    }

    #[test]
    fn log_sum_exp_bounds(xs in proptest::collection::vec(-50.0f32..=50.0, 1..=20)) {
        let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = log_sum_exp(&xs);
        prop_assert!(lse >= max - 1e-4);
        prop_assert!(lse <= max + (xs.len() as f32).ln() + 1e-4);
    }

    #[test]
    fn quantile_is_monotone(
        xs in proptest::collection::vec(-100.0f32..=100.0, 1..=30),
        q1 in 0.0f32..=1.0,
        q2 in 0.0f32..=1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-5);
    }

    #[test]
    fn norms_satisfy_standard_inequalities(v in proptest::collection::vec(-9.0f32..=9.0, 1..=25)) {
        let n = v.len();
        let t = Tensor::from_vec(v, &[n]);
        prop_assert!(t.norm_linf() <= t.norm_l2() + 1e-3);
        prop_assert!(t.norm_l2() <= t.norm_l1() + 1e-3);
        prop_assert!(t.norm_l1() <= n as f32 * t.norm_linf() + 1e-3);
    }
}

mod linalg_props {
    use dv_tensor::linalg::{cholesky, solve_spd};
    use dv_tensor::matmul::{matmul, matvec, transpose};
    use dv_tensor::Tensor;
    use proptest::prelude::*;

    /// Builds a well-conditioned SPD matrix deterministically from a seed.
    fn spd(n: usize, seed: u64) -> Tensor {
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        let m = Tensor::randn(&mut rng, &[n, n], 1.0);
        let mut a = matmul(&m, &transpose(&m));
        for i in 0..n {
            let v = a.at(&[i, i]) + n as f32;
            a.set(&[i, i], v);
        }
        a
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn spd_solve_round_trips((n, seed) in (2usize..=8, 0u64..1000)) {
            let a = spd(n, seed);
            let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed ^ 7);
            let x_true = Tensor::randn(&mut rng, &[n], 1.0);
            let b = matvec(&a, &x_true);
            let x = solve_spd(&a, &b).unwrap();
            for (got, want) in x.data().iter().zip(x_true.data()) {
                prop_assert!((got - want).abs() < 1e-2 * (1.0 + want.abs()), "{} vs {}", got, want);
            }
        }

        #[test]
        fn cholesky_factor_is_lower_triangular((n, seed) in (2usize..=8, 0u64..1000)) {
            let l = cholesky(&spd(n, seed)).unwrap();
            for i in 0..n {
                prop_assert!(l.at(&[i, i]) > 0.0, "non-positive diagonal");
                for j in (i + 1)..n {
                    prop_assert_eq!(l.at(&[i, j]), 0.0);
                }
            }
        }
    }
}
