//! Borrowed tensor views for the allocation-free inference path.
//!
//! A [`TensorView`] is `(dims, &[f32])`: the shape lives wherever the
//! caller keeps it (an inference plan, a [`Tensor`]) and the data is a
//! borrowed slice, typically a region of a [`Workspace`](crate::Workspace)
//! buffer. Views never own memory, so handing them through a layer stack
//! costs nothing.

use crate::tensor::Tensor;

/// Immutable borrowed view: a shape plus a matching flat `f32` slice.
#[derive(Clone, Copy, Debug)]
pub struct TensorView<'a> {
    dims: &'a [usize],
    data: &'a [f32],
}

impl<'a> TensorView<'a> {
    /// Builds a view over `data` with logical shape `dims`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `dims`.
    pub fn new(dims: &'a [usize], data: &'a [f32]) -> Self {
        let numel: usize = dims.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "view data length {} does not match shape {:?}",
            data.len(),
            dims
        );
        Self { dims, data }
    }

    /// The logical shape.
    pub fn dims(&self) -> &'a [usize] {
        self.dims
    }

    /// The flat row-major data.
    pub fn data(&self) -> &'a [f32] {
        self.data
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Copies the view into an owned [`Tensor`] (allocates).
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(self.data.to_vec(), self.dims)
    }
}

/// Mutable borrowed view: a shape plus a matching flat mutable slice.
#[derive(Debug)]
pub struct TensorViewMut<'a> {
    dims: &'a [usize],
    data: &'a mut [f32],
}

impl<'a> TensorViewMut<'a> {
    /// Builds a mutable view over `data` with logical shape `dims`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `dims`.
    pub fn new(dims: &'a [usize], data: &'a mut [f32]) -> Self {
        let numel: usize = dims.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "view data length {} does not match shape {:?}",
            data.len(),
            dims
        );
        Self { dims, data }
    }

    /// The logical shape.
    pub fn dims(&self) -> &'a [usize] {
        self.dims
    }

    /// The flat row-major data, immutably.
    pub fn data(&self) -> &[f32] {
        self.data
    }

    /// The flat row-major data, mutably.
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.data
    }

    /// Reborrows as an immutable view.
    pub fn as_view(&self) -> TensorView<'_> {
        TensorView {
            dims: self.dims,
            data: self.data,
        }
    }
}

impl Tensor {
    /// Borrows this tensor as a [`TensorView`].
    pub fn view(&self) -> TensorView<'_> {
        TensorView {
            dims: self.shape().dims(),
            data: self.data(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_round_trips_tensor() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let v = t.view();
        assert_eq!(v.dims(), &[2, 2]);
        assert_eq!(v.numel(), 4);
        assert_eq!(v.to_tensor(), t);
    }

    #[test]
    fn mut_view_writes_through() {
        let mut buf = vec![0.0f32; 3];
        let dims = [3usize];
        let mut v = TensorViewMut::new(&dims, &mut buf);
        v.data_mut()[1] = 5.0;
        assert_eq!(v.as_view().data(), &[0.0, 5.0, 0.0]);
        assert_eq!(buf, vec![0.0, 5.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn mismatched_view_panics() {
        let buf = [1.0f32; 3];
        let dims = [2usize, 2];
        let _ = TensorView::new(&dims, &buf);
    }
}
