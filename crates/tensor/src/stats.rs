//! Small numeric helpers shared across the workspace.

use crate::tensor::Tensor;

/// Numerically stable softmax of a rank-1 tensor.
///
/// # Panics
///
/// Panics if `logits` is not rank 1.
///
/// # Examples
///
/// ```
/// use dv_tensor::{stats::softmax, Tensor};
///
/// let p = softmax(&Tensor::from_vec(vec![0.0, 0.0], &[2]));
/// assert!((p.data()[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().ndim(), 1, "softmax expects a rank-1 tensor");
    let max = logits.max();
    let exps = logits.map(|x| (x - max).exp());
    let z = exps.sum();
    exps.scale(1.0 / z)
}

/// Log-sum-exp of a slice, computed stably.
pub fn log_sum_exp(xs: &[f32]) -> f32 {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    max + xs.iter().map(|&x| (x - max).exp()).sum::<f32>().ln()
}

/// Mean of a slice. Returns 0 for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population variance of a slice. Returns 0 for slices shorter than 2.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Median of a slice (average of the middle two for even lengths).
///
/// Returns 0 for an empty slice; NaNs sort last.
pub fn median(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Empirical quantile `q` in `[0, 1]` by linear interpolation.
///
/// Returns 0 for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f32], q: f32) -> f32 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less));
    let pos = q * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f32;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_preserves_order() {
        let p = softmax(&Tensor::from_vec(vec![1.0, 3.0, 2.0], &[3]));
        assert!((p.sum() - 1.0).abs() < 1e-6);
        assert!(p.data()[1] > p.data()[2] && p.data()[2] > p.data()[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let b = softmax(&Tensor::from_vec(vec![101.0, 102.0], &[2]));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_survives_large_logits() {
        let p = softmax(&Tensor::from_vec(vec![1000.0, 0.0], &[2]));
        assert!(!p.has_non_finite());
        assert!((p.data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_sum_exp_matches_naive_in_safe_range() {
        let xs = [0.1f32, 0.7, -0.3];
        let naive = xs.iter().map(|x| x.exp()).sum::<f32>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-6);
    }

    #[test]
    fn mean_variance_median() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(variance(&xs), 1.25);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 3.0);
        assert_eq!(quantile(&xs, 0.5), 1.5);
    }

    #[test]
    fn empty_slices_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }
}
