//! Dense matrix multiplication with the transposed variants backprop needs.
//!
//! The kernels are cache-blocked scalar loops: they are within a small
//! factor of a tuned BLAS for the matrix sizes the CNNs produce (hundreds
//! by hundreds), and they keep the crate free of external dependencies.
//! Large products additionally split their output row-blocks across the
//! `dv-runtime` pool; every output element keeps its sequential
//! accumulation order, so results are bit-identical at any thread count.

use crate::tensor::Tensor;

/// Loop-blocking tile edge, sized so three tiles fit comfortably in L1.
const BLOCK: usize = 64;

/// Minimum `m * k * n` before a product is worth scheduling on the pool;
/// below this the fork/join overhead outweighs the work.
const PAR_FLOPS: usize = 1 << 15;

/// `C = A * B` for `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
///
/// Panics if either argument is not rank 2 or the inner dimensions differ.
///
/// # Examples
///
/// ```
/// use dv_tensor::{matmul::matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
/// assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (kb, n) = dims2(b, "matmul rhs");
    assert_eq!(k, kb, "matmul inner dims differ: {k} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    matmul_into(a.data(), m, k, b.data(), n, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// `C = A * B` into a caller-provided buffer: `a` is `[m, k]` row-major,
/// `b` is `[k, n]`, `out` receives `[m, n]`. The buffer is zeroed first,
/// so its previous contents do not matter.
///
/// Identical loop structure, accumulation order and parallel split as
/// [`matmul`], so results are bit-for-bit the same — this is the
/// allocation-free entry point the inference plan uses.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn matmul_into(ad: &[f32], m: usize, k: usize, bd: &[f32], n: usize, out: &mut [f32]) {
    dv_trace::span!("tensor.matmul");
    assert_eq!(ad.len(), m * k, "matmul_into lhs length mismatch");
    assert_eq!(bd.len(), k * n, "matmul_into rhs length mismatch");
    assert_eq!(out.len(), m * n, "matmul_into out length mismatch");
    out.fill(0.0);
    if m > BLOCK && m * k * n >= PAR_FLOPS {
        // One task per row-block: blocks own disjoint slices of `out` and
        // run the identical per-row loops, so the product is bit-exact.
        dv_runtime::par_chunks_mut(out, BLOCK * n, |bi, rows| {
            let i0 = bi * BLOCK;
            matmul_block(ad, bd, i0, (i0 + BLOCK).min(m), k, n, rows);
        });
    } else {
        for i0 in (0..m).step_by(BLOCK) {
            let i1 = (i0 + BLOCK).min(m);
            matmul_block(ad, bd, i0, i1, k, n, &mut out[i0 * n..i1 * n]);
        }
    }
}

/// Computes output rows `i0..i1` of `A * B` into `rows` (their slice of
/// the output). i-k-j loop order with blocking: the innermost loop is a
/// contiguous axpy over a row of B, which auto-vectorizes well.
fn matmul_block(
    ad: &[f32],
    bd: &[f32],
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
    rows: &mut [f32],
) {
    for k0 in (0..k).step_by(BLOCK) {
        let k1 = (k0 + BLOCK).min(k);
        for i in i0..i1 {
            let crow = &mut rows[(i - i0) * n..(i - i0 + 1) * n];
            for kk in k0..k1 {
                let aik = ad[i * k + kk];
                // dv-lint: allow(float-eq, reason = "structural sparsity skip: exact stored zero contributes nothing to the accumulation")
                if aik == 0.0 {
                    continue;
                }
                let brow = &bd[kk * n..(kk + 1) * n];
                for (c, &bv) in crow.iter_mut().zip(brow) {
                    *c += aik * bv;
                }
            }
        }
    }
}

/// `C = A^T * B` for `A: [k, m]`, `B: [k, n]` (result `[m, n]`).
///
/// Used in backprop for weight gradients without materializing `A^T`.
/// Stays sequential: its k-outer loop scatters into every output row, so
/// a row-parallel split would need either a transpose (extra memory
/// traffic) or per-row k-strided reads (cache-hostile); gradient sizes
/// here do not repay either.
///
/// # Panics
///
/// Panics on rank or inner-dimension mismatch.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_tn lhs");
    let (kb, n) = dims2(b, "matmul_tn rhs");
    assert_eq!(k, kb, "matmul_tn inner dims differ: {k} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for kk in 0..k {
        let arow = &ad[kk * m..(kk + 1) * m];
        let brow = &bd[kk * n..(kk + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            // dv-lint: allow(float-eq, reason = "structural sparsity skip: exact stored zero contributes nothing to the accumulation")
            if av == 0.0 {
                continue;
            }
            let crow = &mut out[i * n..(i + 1) * n];
            for (c, &bv) in crow.iter_mut().zip(brow) {
                *c += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = A * B^T` for `A: [m, k]`, `B: [n, k]` (result `[m, n]`).
///
/// Used in backprop for input gradients without materializing `B^T`.
///
/// # Panics
///
/// Panics on rank or inner-dimension mismatch.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_nt lhs");
    let (n, kb) = dims2(b, "matmul_nt rhs");
    assert_eq!(k, kb, "matmul_nt inner dims differ: {k} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    matmul_nt_into(a.data(), m, k, b.data(), n, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// `C = A * B^T` into a caller-provided buffer: `a` is `[m, k]`, `b` is
/// `[n, k]`, `out` receives `[m, n]`. Every element is assigned, so the
/// buffer's previous contents do not matter.
///
/// Same loops, accumulation order and parallel split as [`matmul_nt`]
/// (bit-identical results); used by the inference plan's dense layers.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn matmul_nt_into(ad: &[f32], m: usize, k: usize, bd: &[f32], n: usize, out: &mut [f32]) {
    dv_trace::span!("tensor.matmul_nt");
    assert_eq!(ad.len(), m * k, "matmul_nt_into lhs length mismatch");
    assert_eq!(bd.len(), n * k, "matmul_nt_into rhs length mismatch");
    assert_eq!(out.len(), m * n, "matmul_nt_into out length mismatch");
    if m > 1 && m * k * n >= PAR_FLOPS {
        // Row-parallel: each output row is an independent set of dot
        // products with an unchanged accumulation order (bit-exact).
        dv_runtime::par_chunks_mut(out, n, |i, crow| {
            matmul_nt_row(ad, bd, i, k, crow);
        });
    } else {
        for i in 0..m {
            matmul_nt_row(ad, bd, i, k, &mut out[i * n..(i + 1) * n]);
        }
    }
}

/// Computes output row `i` of `A * B^T` into `crow`.
fn matmul_nt_row(ad: &[f32], bd: &[f32], i: usize, k: usize, crow: &mut [f32]) {
    let arow = &ad[i * k..(i + 1) * k];
    for (j, c) in crow.iter_mut().enumerate() {
        let brow = &bd[j * k..(j + 1) * k];
        let mut acc = 0.0f32;
        for (av, bv) in arow.iter().zip(brow) {
            acc += av * bv;
        }
        *c = acc;
    }
}

/// Matrix-vector product `y = A * x` for `A: [m, k]`, `x: [k]`.
///
/// # Panics
///
/// Panics if `a` is not rank 2, `x` is not rank 1 or dimensions differ.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matvec lhs");
    assert_eq!(x.shape().ndim(), 1, "matvec rhs must be rank 1");
    assert_eq!(x.numel(), k, "matvec dims differ: {k} vs {}", x.numel());
    let ad = a.data();
    let xd = x.data();
    let mut out = vec![0.0f32; m];
    for (i, o) in out.iter_mut().enumerate() {
        let row = &ad[i * k..(i + 1) * k];
        *o = row.iter().zip(xd).map(|(a, b)| a * b).sum();
    }
    Tensor::from_vec(out, &[m])
}

/// Explicit transpose of a rank-2 tensor.
///
/// # Panics
///
/// Panics if `a` is not rank 2.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = dims2(a, "transpose");
    let ad = a.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = ad[i * n + j];
        }
    }
    Tensor::from_vec(out, &[n, m])
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().ndim(),
        2,
        "{what} must be rank 2, got {}",
        t.shape()
    );
    (t.shape().dim(0), t.shape().dim(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape().dims(), b.shape().dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} != {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (70, 65, 130), (128, 64, 1)] {
            let a = Tensor::randn(&mut rng, &[m, k], 1.0);
            let b = Tensor::randn(&mut rng, &[k, n], 1.0);
            assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-3);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn(&mut rng, &[4, 4], 1.0);
        assert_close(&matmul(&a, &Tensor::eye(4)), &a, 1e-6);
        assert_close(&matmul(&Tensor::eye(4), &a), &a, 1e-6);
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::randn(&mut rng, &[7, 3], 1.0);
        let b = Tensor::randn(&mut rng, &[7, 4], 1.0);
        assert_close(&matmul_tn(&a, &b), &matmul(&transpose(&a), &b), 1e-4);

        let c = Tensor::randn(&mut rng, &[5, 6], 1.0);
        let d = Tensor::randn(&mut rng, &[8, 6], 1.0);
        assert_close(&matmul_nt(&c, &d), &matmul(&c, &transpose(&d)), 1e-4);
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Tensor::randn(&mut rng, &[6, 4], 1.0);
        let x = Tensor::randn(&mut rng, &[4], 1.0);
        let as_mat = matmul(&a, &x.reshape(&[4, 1]));
        assert_close(&matvec(&a, &x), &as_mat.reshape(&[6]), 1e-5);
    }

    #[test]
    fn transpose_is_involution() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&mut rng, &[3, 8], 1.0);
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn mismatched_inner_dims_panic() {
        let _ = matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }
}
