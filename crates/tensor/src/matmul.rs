//! Dense matrix multiplication with the transposed variants backprop needs.
//!
//! Every matrix-matrix function here is a thin layout adapter over the
//! packed, register-tiled microkernel in [`crate::gemm`]: the operands
//! are described as [`gemm::PackA`]/[`gemm::PackB`] sources and driven
//! through the one shared kernel. The historical accumulation order of
//! each variant is preserved exactly (ascending-`k` chains, structural
//! zero-skip on the lhs for `matmul`/`matmul_tn` but not `matmul_nt`),
//! so results are bit-identical to the pre-refactor loop nests at any
//! thread count. Only [`matvec`] stays a direct per-row reduction — it
//! is memory-bound, and its iterator `.sum()` chain has signed-zero
//! behavior (`Sum<f32>` folds from `-0.0`) that the kernel's
//! `+0.0`-seeded accumulators deliberately do not reproduce.

use crate::gemm::{self, PackA, PackB};
use crate::tensor::Tensor;

/// `C = A * B` for `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
///
/// Panics if either argument is not rank 2 or the inner dimensions differ.
///
/// # Examples
///
/// ```
/// use dv_tensor::{matmul::matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
/// assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (kb, n) = dims2(b, "matmul rhs");
    assert_eq!(k, kb, "matmul inner dims differ: {k} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    matmul_into(a.data(), m, k, b.data(), n, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// `C = A * B` into a caller-provided buffer: `a` is `[m, k]` row-major,
/// `b` is `[k, n]`, `out` receives `[m, n]`. The buffer is zeroed first,
/// so its previous contents do not matter.
///
/// Identical accumulation order and skip semantics as [`matmul`], so
/// results are bit-for-bit the same — this is the allocation-free entry
/// point the inference plan uses.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn matmul_into(ad: &[f32], m: usize, k: usize, bd: &[f32], n: usize, out: &mut [f32]) {
    dv_trace::span!("tensor.matmul");
    assert_eq!(ad.len(), m * k, "matmul_into lhs length mismatch");
    assert_eq!(bd.len(), k * n, "matmul_into rhs length mismatch");
    assert_eq!(out.len(), m * n, "matmul_into out length mismatch");
    gemm::gemm(PackA::Rows(ad), PackB::Rows(bd), m, k, n, true, out);
}

/// `C = A^T * B` for `A: [k, m]`, `B: [k, n]` (result `[m, n]`).
///
/// Used in backprop for weight gradients without materializing `A^T`:
/// the packed A panel reads the transposed layout directly.
///
/// # Panics
///
/// Panics on rank or inner-dimension mismatch.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_tn lhs");
    let (kb, n) = dims2(b, "matmul_tn rhs");
    assert_eq!(k, kb, "matmul_tn inner dims differ: {k} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    gemm::gemm(
        PackA::Trans(a.data()),
        PackB::Rows(b.data()),
        m,
        k,
        n,
        true,
        &mut out,
    );
    Tensor::from_vec(out, &[m, n])
}

/// `C = A * B^T` for `A: [m, k]`, `B: [n, k]` (result `[m, n]`).
///
/// Used in backprop for input gradients without materializing `B^T`.
///
/// # Panics
///
/// Panics on rank or inner-dimension mismatch.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_nt lhs");
    let (n, kb) = dims2(b, "matmul_nt rhs");
    assert_eq!(k, kb, "matmul_nt inner dims differ: {k} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    matmul_nt_into(a.data(), m, k, b.data(), n, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// `C = A * B^T` into a caller-provided buffer: `a` is `[m, k]`, `b` is
/// `[n, k]`, `out` receives `[m, n]`. Every element is assigned, so the
/// buffer's previous contents do not matter.
///
/// Same accumulation order as [`matmul_nt`] (bit-identical results, no
/// structural zero-skip); used by the inference plan's dense layers.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn matmul_nt_into(ad: &[f32], m: usize, k: usize, bd: &[f32], n: usize, out: &mut [f32]) {
    dv_trace::span!("tensor.matmul_nt");
    assert_eq!(ad.len(), m * k, "matmul_nt_into lhs length mismatch");
    assert_eq!(bd.len(), n * k, "matmul_nt_into rhs length mismatch");
    assert_eq!(out.len(), m * n, "matmul_nt_into out length mismatch");
    gemm::gemm(PackA::Rows(ad), PackB::Trans(bd), m, k, n, false, out);
}

/// Matrix-vector product `y = A * x` for `A: [m, k]`, `x: [k]`.
///
/// Deliberately *not* routed through the packed kernel: an `[m, k] x [k]`
/// product is memory-bound (each operand element is read once) so packing
/// buys nothing, and the historical per-row iterator `.sum()` chain is
/// part of matvec's bit contract — `Sum<f32>` folds from `-0.0`, so a row
/// whose products are all `-0.0` yields `-0.0`, which a `+0.0`-seeded
/// accumulator would turn into `+0.0`.
///
/// # Panics
///
/// Panics if `a` is not rank 2, `x` is not rank 1 or dimensions differ.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matvec lhs");
    assert_eq!(x.shape().ndim(), 1, "matvec rhs must be rank 1");
    assert_eq!(x.numel(), k, "matvec dims differ: {k} vs {}", x.numel());
    let ad = a.data();
    let xd = x.data();
    let out: Vec<f32> = (0..m)
        .map(|i| {
            ad[i * k..(i + 1) * k]
                .iter()
                .zip(xd)
                .map(|(&p, &q)| p * q)
                .sum()
        })
        .collect();
    Tensor::from_vec(out, &[m])
}

/// Explicit transpose of a rank-2 tensor.
///
/// # Panics
///
/// Panics if `a` is not rank 2.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = dims2(a, "transpose");
    let mut out = vec![0.0f32; m * n];
    gemm::transpose_into(a.data(), m, n, &mut out);
    Tensor::from_vec(out, &[n, m])
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().ndim(),
        2,
        "{what} must be rank 2, got {}",
        t.shape()
    );
    (t.shape().dim(0), t.shape().dim(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape().dims(), b.shape().dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} != {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (70, 65, 130), (128, 64, 1)] {
            let a = Tensor::randn(&mut rng, &[m, k], 1.0);
            let b = Tensor::randn(&mut rng, &[k, n], 1.0);
            assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-3);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn(&mut rng, &[4, 4], 1.0);
        assert_close(&matmul(&a, &Tensor::eye(4)), &a, 1e-6);
        assert_close(&matmul(&Tensor::eye(4), &a), &a, 1e-6);
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::randn(&mut rng, &[7, 3], 1.0);
        let b = Tensor::randn(&mut rng, &[7, 4], 1.0);
        assert_close(&matmul_tn(&a, &b), &matmul(&transpose(&a), &b), 1e-4);

        let c = Tensor::randn(&mut rng, &[5, 6], 1.0);
        let d = Tensor::randn(&mut rng, &[8, 6], 1.0);
        assert_close(&matmul_nt(&c, &d), &matmul(&c, &transpose(&d)), 1e-4);
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Tensor::randn(&mut rng, &[6, 4], 1.0);
        let x = Tensor::randn(&mut rng, &[4], 1.0);
        let as_mat = matmul(&a, &x.reshape(&[4, 1]));
        assert_close(&matvec(&a, &x), &as_mat.reshape(&[6]), 1e-5);
    }

    #[test]
    fn transpose_is_involution() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&mut rng, &[3, 8], 1.0);
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn mismatched_inner_dims_panic() {
        let _ = matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }
}
