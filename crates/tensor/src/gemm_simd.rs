//! AVX microkernel behind the `simd` cargo feature.
//!
//! One 8-float lane per output column: each output element's `k`-chain is
//! a sequential run of `_mm256_mul_ps` + `_mm256_add_ps` in its own lane,
//! never FMA and never a horizontal reduction, so the bits match the
//! scalar microkernel exactly (see the bit-identity contract in
//! [`crate::gemm`]). Zero-padded panel lanes accumulate garbage that is
//! never stored back: the store path only writes the `n_eff` live
//! columns of the `m_eff` live rows.

use std::arch::x86_64::{
    __m256, _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
    _mm256_storeu_ps,
};
use std::sync::OnceLock;

use crate::gemm::{MR, NR};

/// True when the running CPU supports AVX (detected once, cached).
pub(crate) fn avx_available() -> bool {
    static AVAIL: OnceLock<bool> = OnceLock::new();
    *AVAIL.get_or_init(|| std::is_x86_feature_detected!("avx"))
}

/// AVX `MR×NR` microkernel over one packed panel pair; same contract as
/// `gemm::kernel_scalar` (load live rows from `c`, ascending-`k`
/// accumulation, store live lanes back), same bits.
#[target_feature(enable = "avx")]
// SAFETY: callers must have confirmed AVX support via `avx_available()`
// before entering; every memory access below is bounds-checked slice
// indexing or a load/store within `c`'s checked row slices.
pub(crate) unsafe fn kernel_avx<const SKIP: bool>(
    pa: &[f32],
    pb: &[f32],
    kc: usize,
    m_eff: usize,
    n_eff: usize,
    c: &mut [f32],
    stride: usize,
) {
    debug_assert!(pa.len() >= kc * MR && pb.len() >= kc * NR);
    debug_assert!(m_eff <= MR && n_eff <= NR);
    if m_eff == MR && n_eff == NR {
        full_tile::<SKIP>(pa, pb, kc, c, stride);
    } else {
        edge_tile::<SKIP>(pa, pb, kc, m_eff, n_eff, c, stride);
    }
}

/// Full `MR×NR` tile: all eight accumulators live in registers and the
/// loads/stores hit `c` directly.
#[target_feature(enable = "avx")]
// SAFETY: same preconditions as `kernel_avx`, which is the only caller.
unsafe fn full_tile<const SKIP: bool>(
    pa: &[f32],
    pb: &[f32],
    kc: usize,
    c: &mut [f32],
    stride: usize,
) {
    let mut acc = [_mm256_setzero_ps(); MR];
    for (ir, slot) in acc.iter_mut().enumerate() {
        *slot = load8(&c[ir * stride..ir * stride + NR]);
    }
    for kk in 0..kc {
        let bv = load8(&pb[kk * NR..(kk + 1) * NR]);
        let arow = &pa[kk * MR..(kk + 1) * MR];
        for (slot, &a) in acc.iter_mut().zip(arow) {
            // dv-lint: allow(float-eq, reason = "structural sparsity skip: exact stored zero contributes nothing to the accumulation")
            if SKIP && a == 0.0 {
                continue;
            }
            *slot = _mm256_add_ps(*slot, _mm256_mul_ps(_mm256_set1_ps(a), bv));
        }
    }
    for (ir, slot) in acc.iter().enumerate() {
        store8(*slot, &mut c[ir * stride..ir * stride + NR]);
    }
}

/// Partial tile: rows load through a stack staging array so partial
/// columns read/write only the `n_eff` live lanes. Covers the hot `m = 1`
/// dense taps with full 8-lane vectorization.
#[target_feature(enable = "avx")]
// SAFETY: same preconditions as `kernel_avx`, which is the only caller.
unsafe fn edge_tile<const SKIP: bool>(
    pa: &[f32],
    pb: &[f32],
    kc: usize,
    m_eff: usize,
    n_eff: usize,
    c: &mut [f32],
    stride: usize,
) {
    let mut acc = [_mm256_setzero_ps(); MR];
    let mut tmp = [0.0f32; NR];
    for (ir, slot) in acc.iter_mut().enumerate().take(m_eff) {
        tmp = [0.0; NR];
        tmp[..n_eff].copy_from_slice(&c[ir * stride..ir * stride + n_eff]);
        *slot = load8(&tmp);
    }
    for kk in 0..kc {
        let bv = load8(&pb[kk * NR..(kk + 1) * NR]);
        let arow = &pa[kk * MR..kk * MR + m_eff];
        for (slot, &a) in acc.iter_mut().zip(arow) {
            // dv-lint: allow(float-eq, reason = "structural sparsity skip: exact stored zero contributes nothing to the accumulation")
            if SKIP && a == 0.0 {
                continue;
            }
            *slot = _mm256_add_ps(*slot, _mm256_mul_ps(_mm256_set1_ps(a), bv));
        }
    }
    for (ir, slot) in acc.iter().enumerate().take(m_eff) {
        store8(*slot, &mut tmp);
        c[ir * stride..ir * stride + n_eff].copy_from_slice(&tmp[..n_eff]);
    }
}

/// Small-path `C += A · B` for row-major operands (see
/// `gemm::small_rows`): the i-k nest runs inside one `target_feature`
/// call, with the rank-1 row update on AVX lanes. Each output element's
/// chain is element-wise and ascending-`k`, so the bits match the scalar
/// nest exactly; the tail past the last full 8-lane chunk runs scalar.
#[target_feature(enable = "avx")]
// SAFETY: callers must have confirmed AVX support via `avx_available()`
// before entering; all memory access is bounds-checked slice indexing or
// loads/stores within length-checked 8-float chunks.
pub(crate) unsafe fn small_rows_avx<const SKIP: bool>(
    ad: &[f32],
    bd: &[f32],
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    for (arow, orow) in ad.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        for (kk, &av) in arow.iter().enumerate() {
            // dv-lint: allow(float-eq, reason = "structural sparsity skip: exact stored zero contributes nothing to the accumulation")
            if SKIP && av == 0.0 {
                continue;
            }
            axpy_row(av, &bd[kk * n..(kk + 1) * n], orow);
        }
    }
}

/// Small-path fused-conv step (see `gemm::col_update`): rank-1 update of
/// every output row with weight column `kk` and one gathered row of the
/// column matrix, all rows inside one `target_feature` call.
#[target_feature(enable = "avx")]
// SAFETY: callers must have confirmed AVX support via `avx_available()`
// before entering; all memory access is bounds-checked slice indexing or
// loads/stores within length-checked 8-float chunks.
pub(crate) unsafe fn col_update_avx<const SKIP: bool>(
    ad: &[f32],
    k: usize,
    kk: usize,
    brow: &[f32],
    out: &mut [f32],
    n: usize,
) {
    for (arow, orow) in ad.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        let av = arow[kk];
        // dv-lint: allow(float-eq, reason = "structural sparsity skip: exact stored zero contributes nothing to the accumulation")
        if SKIP && av == 0.0 {
            continue;
        }
        axpy_row(av, brow, orow);
    }
}

/// Rank-1 row update `c[j] += a * b[j]` on AVX lanes with a scalar tail.
/// Element-wise, so per-element chains (and therefore bits) are the same
/// as the scalar loop.
#[target_feature(enable = "avx")]
// SAFETY: same precondition as its callers (AVX confirmed at runtime);
// only length-checked slice loads/stores.
unsafe fn axpy_row(a: f32, b: &[f32], c: &mut [f32]) {
    let n = c.len();
    debug_assert!(b.len() >= n);
    let va = _mm256_set1_ps(a);
    let mut j = 0;
    while j + NR <= n {
        let sum = _mm256_add_ps(
            load8(&c[j..j + NR]),
            _mm256_mul_ps(va, load8(&b[j..j + NR])),
        );
        store8(sum, &mut c[j..j + NR]);
        j += NR;
    }
    for (x, &bv) in c[j..].iter_mut().zip(&b[j..n]) {
        *x += a * bv;
    }
}

/// Loads exactly eight floats from a length-checked slice.
#[target_feature(enable = "avx")]
// SAFETY: the length assert guarantees the 32-byte unaligned load stays
// inside `src`.
unsafe fn load8(src: &[f32]) -> __m256 {
    assert!(src.len() >= NR);
    _mm256_loadu_ps(src.as_ptr())
}

/// Stores exactly eight floats into a length-checked slice.
#[target_feature(enable = "avx")]
// SAFETY: the length assert guarantees the 32-byte unaligned store stays
// inside `dst`.
unsafe fn store8(v: __m256, dst: &mut [f32]) {
    assert!(dst.len() >= NR);
    _mm256_storeu_ps(dst.as_mut_ptr(), v);
}
