//! The dense row-major `f32` tensor type.

use std::fmt;

use rand::distributions::Distribution;
use rand::Rng;

use crate::shape::Shape;

/// A dense, contiguous, row-major `f32` tensor.
///
/// All neural-network activations, weights and image data in the workspace
/// are `Tensor`s. The type is deliberately simple: no views, no broadcasting
/// beyond scalar ops, no unsafe. Operations that combine two tensors panic
/// on shape mismatch — shape errors are always programming errors here, not
/// recoverable conditions.
///
/// # Examples
///
/// ```
/// use dv_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.sum(), 0.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Self {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Self {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a square identity matrix of side `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Self { shape, data }
    }

    /// Creates a tensor of i.i.d. standard-normal draws scaled by `std`.
    pub fn randn<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], std: f32) -> Self {
        let normal = StandardNormal;
        let shape = Shape::new(dims);
        let data = (0..shape.numel())
            .map(|_| normal.sample(rng) * std)
            .collect();
        Self { shape, data }
    }

    /// Creates a tensor of i.i.d. uniform draws in `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], lo: f32, hi: f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the flat buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a tensor with the same buffer and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.data.len(),
            "cannot reshape {} elements into {}",
            self.data.len(),
            shape
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other);
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha`, returning a new tensor.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| x * alpha)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.data.len() as f32
    }

    /// Maximum element.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element in the flat buffer (first on ties).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Euclidean norm of the flat buffer.
    pub fn norm_l2(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of absolute values of the flat buffer.
    pub fn norm_l1(&self) -> f32 {
        self.data.iter().map(|&x| x.abs()).sum::<f32>()
    }

    /// Maximum absolute value of the flat buffer.
    pub fn norm_linf(&self) -> f32 {
        self.data.iter().map(|&x| x.abs()).fold(0.0, f32::max)
    }

    /// Clamps every element into `[lo, hi]`, returning a new tensor.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Whether any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Extracts row `row` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `row` is out of bounds.
    pub fn row(&self, row: usize) -> Tensor {
        assert_eq!(self.shape.ndim(), 2, "row() requires a rank-2 tensor");
        let cols = self.shape.dim(1);
        let start = row * cols;
        assert!(row < self.shape.dim(0), "row {row} out of bounds");
        Tensor::from_vec(self.data[start..start + cols].to_vec(), &[cols])
    }

    /// Extracts the `n`-th outermost slice: for a `[N, ...]` tensor,
    /// returns the `[...]`-shaped sub-tensor at index `n`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has rank < 2 or `n` is out of bounds.
    pub fn index_outer(&self, n: usize) -> Tensor {
        assert!(self.shape.ndim() >= 2, "index_outer() requires rank >= 2");
        assert!(n < self.shape.dim(0), "outer index {n} out of bounds");
        let inner: usize = self.shape.dims()[1..].iter().product();
        let start = n * inner;
        Tensor::from_vec(
            self.data[start..start + inner].to_vec(),
            &self.shape.dims()[1..],
        )
    }

    /// Stacks same-shaped tensors along a new outermost axis.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes differ.
    pub fn stack(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "cannot stack zero tensors");
        let inner = items[0].shape.clone();
        let mut data = Vec::with_capacity(items.len() * inner.numel());
        for item in items {
            assert!(
                item.shape.same_dims(&inner),
                "stack shape mismatch: {} vs {}",
                item.shape,
                inner
            );
            data.extend_from_slice(&item.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(inner.dims());
        Tensor::from_vec(data, &dims)
    }

    fn assert_same_shape(&self, other: &Tensor) {
        assert!(
            self.shape.same_dims(&other.shape),
            "shape mismatch: {} vs {}",
            self.shape,
            other.shape
        );
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor({}, data[..{}]={:?}{})",
            self.shape,
            preview.len(),
            preview,
            if self.data.len() > 8 { ", ..." } else { "" }
        )
    }
}

/// A Box-Muller standard normal sampler.
///
/// `rand` 0.8 does not bundle a normal distribution (that lives in
/// `rand_distr`, which is outside the approved dependency list), so we
/// implement the classic Box-Muller transform directly.
struct StandardNormal;

impl Distribution<f32> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f32 = 1.0 - rng.gen::<f32>();
        let u2: f32 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[3]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[4]).sum(), 4.0);
        assert_eq!(Tensor::full(&[2, 2], 2.5).sum(), 10.0);
    }

    #[test]
    fn eye_has_unit_trace_rows() {
        let t = Tensor::eye(3);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 0.0);
        assert_eq!(t.sum(), 3.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let b = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-1.0, 4.0, 2.0, -5.0], &[4]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), -5.0);
        assert_eq!(t.argmax(), 1);
        assert_eq!(t.norm_l1(), 12.0);
        assert_eq!(t.norm_linf(), 5.0);
    }

    #[test]
    fn argmax_takes_first_on_ties() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0], &[3]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.shape().dims(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_wrong_count_panics() {
        Tensor::zeros(&[4]).reshape(&[3]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let _ = Tensor::zeros(&[2]).add(&Tensor::zeros(&[3]));
    }

    #[test]
    fn row_and_index_outer() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.row(1).data(), &[4.0, 5.0, 6.0]);
        assert_eq!(t.index_outer(0).data(), &[1.0, 2.0, 3.0]);
        assert_eq!(t.index_outer(0).shape().dims(), &[3]);
    }

    #[test]
    fn stack_round_trips_index_outer() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        assert_eq!(s.shape().dims(), &[2, 2]);
        assert_eq!(s.index_outer(0), a);
        assert_eq!(s.index_outer(1), b);
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&mut rng, &[10_000], 1.0);
        assert!(t.mean().abs() < 0.05, "mean {} too far from 0", t.mean());
        let var = t.map(|x| x * x).mean() - t.mean() * t.mean();
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn rand_uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::rand_uniform(&mut rng, &[1000], -0.25, 0.75);
        assert!(t.min() >= -0.25 && t.max() < 0.75);
    }

    #[test]
    fn clamp_bounds_values() {
        let t = Tensor::from_vec(vec![-2.0, 0.5, 3.0], &[3]);
        assert_eq!(t.clamp(0.0, 1.0).data(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[2]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }
}
