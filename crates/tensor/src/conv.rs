//! `im2col` / `col2im` lowering for 2-D convolution.
//!
//! Convolution layers in [`dv-nn`](https://docs.rs/dv-nn) lower each input
//! image to a column matrix so the convolution becomes one dense matmul;
//! `col2im` is the exact adjoint used for input gradients.

use crate::tensor::Tensor;

/// Geometry of a 2-D convolution over `[C, H, W]` inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeom {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride (same in both directions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl Conv2dGeom {
    /// Output height after the convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input.
    pub fn out_h(&self) -> usize {
        out_dim(self.in_h, self.kernel, self.stride, self.pad)
    }

    /// Output width after the convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input.
    pub fn out_w(&self) -> usize {
        out_dim(self.in_w, self.kernel, self.stride, self.pad)
    }

    /// Number of rows of the column matrix: `C * k * k`.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Number of columns of the column matrix: `out_h * out_w`.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }
}

fn out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    let padded = input + 2 * pad;
    assert!(
        padded >= kernel,
        "kernel {kernel} larger than padded input {padded}"
    );
    (padded - kernel) / stride + 1
}

/// Lowers a `[C, H, W]` image into a `[C*k*k, out_h*out_w]` column matrix.
///
/// Column `p` holds the receptive field of output position `p` (row-major
/// over output coordinates); out-of-bounds taps read as zero (zero padding).
///
/// # Panics
///
/// Panics if `image` does not have shape `[C, H, W]` matching `geom`.
pub fn im2col(image: &Tensor, geom: &Conv2dGeom) -> Tensor {
    assert_eq!(
        image.shape().dims(),
        &[geom.in_channels, geom.in_h, geom.in_w],
        "im2col input shape mismatch"
    );
    let cols = geom.col_cols();
    let mut out = vec![0.0f32; geom.col_rows() * cols];
    im2col_into(image.data(), geom, &mut out);
    Tensor::from_vec(out, &[geom.col_rows(), cols])
}

/// [`im2col`] into a caller-provided buffer: `data` is the flat `[C, H, W]`
/// image, `out` receives the `[C*k*k, out_h*out_w]` column matrix. The
/// buffer is zeroed first (padding taps must read as zero).
///
/// Same per-row fill loops and parallel split as [`im2col`], so the
/// lowering is bit-identical; this is the allocation-free entry point the
/// inference plan's convolutions use.
///
/// # Panics
///
/// Panics if either slice length disagrees with `geom`.
pub fn im2col_into(data: &[f32], geom: &Conv2dGeom, out: &mut [f32]) {
    dv_trace::span!("tensor.im2col");
    assert_eq!(
        data.len(),
        geom.in_channels * geom.in_h * geom.in_w,
        "im2col_into image length mismatch"
    );
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let k = geom.kernel;
    let cols = oh * ow;
    assert_eq!(
        out.len(),
        geom.col_rows() * cols,
        "im2col_into out length mismatch"
    );
    out.fill(0.0);
    let fill_row = |row: usize, dst: &mut [f32]| {
        let (h, w) = (geom.in_h as isize, geom.in_w as isize);
        let kx = row % k;
        let ky = (row / k) % k;
        let c = row / (k * k);
        let chan = &data[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
        for oy in 0..oh {
            let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
            if iy < 0 || iy >= h {
                continue;
            }
            for ox in 0..ow {
                let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                if ix < 0 || ix >= w {
                    continue;
                }
                dst[oy * ow + ox] = chan[iy as usize * geom.in_w + ix as usize];
            }
        }
    };
    // Each row (c, ky, kx) of the column matrix is an independent strided
    // copy into its own chunk, so large lowerings fan rows out across the
    // pool; small ones stay sequential to dodge fork/join overhead.
    if out.len() >= 1 << 14 && geom.col_rows() > 1 {
        dv_runtime::par_chunks_mut(out, cols, fill_row);
    } else {
        for (row, dst) in out.chunks_mut(cols).enumerate() {
            fill_row(row, dst);
        }
    }
}

/// Adjoint of [`im2col`]: scatters a column-matrix gradient back to an image.
///
/// Overlapping receptive fields accumulate, which is exactly the gradient of
/// the im2col lowering.
///
/// # Panics
///
/// Panics if `cols` does not have shape `[C*k*k, out_h*out_w]`.
pub fn col2im(cols: &Tensor, geom: &Conv2dGeom) -> Tensor {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    assert_eq!(
        cols.shape().dims(),
        &[geom.col_rows(), oh * ow],
        "col2im input shape mismatch"
    );
    let k = geom.kernel;
    let ncols = oh * ow;
    let mut out = vec![0.0f32; geom.in_channels * geom.in_h * geom.in_w];
    let data = cols.data();
    let (h, w) = (geom.in_h as isize, geom.in_w as isize);
    for c in 0..geom.in_channels {
        let chan = &mut out[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                let src = &data[row * ncols..(row + 1) * ncols];
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= h {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        if ix < 0 || ix >= w {
                            continue;
                        }
                        chan[iy as usize * geom.in_w + ix as usize] += src[oy * ow + ox];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[geom.in_channels, geom.in_h, geom.in_w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geom(c: usize, h: usize, w: usize, k: usize, s: usize, p: usize) -> Conv2dGeom {
        Conv2dGeom {
            in_channels: c,
            in_h: h,
            in_w: w,
            kernel: k,
            stride: s,
            pad: p,
        }
    }

    #[test]
    fn output_dims_follow_formula() {
        let g = geom(1, 28, 28, 3, 1, 0);
        assert_eq!((g.out_h(), g.out_w()), (26, 26));
        let g = geom(1, 28, 28, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (28, 28));
        let g = geom(1, 28, 28, 2, 2, 0);
        assert_eq!((g.out_h(), g.out_w()), (14, 14));
    }

    #[test]
    fn im2col_1x1_kernel_is_a_flatten() {
        let img = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        let g = geom(1, 2, 2, 1, 1, 0);
        let cols = im2col(&img, &g);
        assert_eq!(cols.shape().dims(), &[1, 4]);
        assert_eq!(cols.data(), img.data());
    }

    #[test]
    fn im2col_extracts_expected_patch() {
        // 3x3 image, 2x2 kernel, stride 1 -> 4 output positions.
        let img = Tensor::from_vec((1..=9).map(|x| x as f32).collect(), &[1, 3, 3]);
        let g = geom(1, 3, 3, 2, 1, 0);
        let cols = im2col(&img, &g);
        assert_eq!(cols.shape().dims(), &[4, 4]);
        // First output position (0,0) should see [1, 2, 4, 5] down the rows.
        let col0: Vec<f32> = (0..4).map(|r| cols.at(&[r, 0])).collect();
        assert_eq!(col0, vec![1.0, 2.0, 4.0, 5.0]);
        // Last output position (1,1) should see [5, 6, 8, 9].
        let col3: Vec<f32> = (0..4).map(|r| cols.at(&[r, 3])).collect();
        assert_eq!(col3, vec![5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn padding_reads_zeros() {
        let img = Tensor::ones(&[1, 2, 2]);
        let g = geom(1, 2, 2, 3, 1, 1);
        let cols = im2col(&img, &g);
        // Center tap of the kernel at output (0,0) is input (0,0) = 1;
        // top-left tap is out of bounds = 0.
        assert_eq!(cols.at(&[4, 0]), 1.0);
        assert_eq!(cols.at(&[0, 0]), 0.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for all x, y: the defining
        // property of the adjoint, checked on random tensors.
        let mut rng = StdRng::seed_from_u64(21);
        for &(c, h, w, k, s, p) in &[(1, 5, 5, 3, 1, 0), (2, 6, 7, 3, 1, 1), (3, 8, 8, 2, 2, 0)] {
            let g = geom(c, h, w, k, s, p);
            let x = Tensor::randn(&mut rng, &[c, h, w], 1.0);
            let y = Tensor::randn(&mut rng, &[g.col_rows(), g.col_cols()], 1.0);
            let lhs: f32 = im2col(&x, &g).mul(&y).sum();
            let rhs: f32 = x.mul(&col2im(&y, &g)).sum();
            assert!((lhs - rhs).abs() < 1e-2, "adjoint mismatch {lhs} vs {rhs}");
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_input_shape_panics() {
        let g = geom(1, 4, 4, 3, 1, 0);
        let _ = im2col(&Tensor::zeros(&[1, 5, 5]), &g);
    }
}
