//! A tiny versioned binary format for tensors and checkpoints.
//!
//! The experiment binaries cache trained models and SVM ensembles between
//! runs; this module provides the on-disk format. It is deliberately
//! minimal: little-endian, magic `DVT1`, no compression.
//!
//! Layout of one tensor record:
//!
//! ```text
//! magic   b"DVT1"
//! ndim    u32
//! dims    ndim x u64
//! data    numel x f32
//! ```
//!
//! Checkpoints are a sequence of named records (see [`write_named`] /
//! [`read_named`]).

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};

use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"DVT1";

/// Error returned when decoding tensor records fails.
#[derive(Debug)]
pub enum DecodeError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic bytes did not match.
    BadMagic([u8; 4]),
    /// A structural field was out of range.
    Malformed(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Io(e) => write!(f, "i/o failure while decoding tensor: {e}"),
            DecodeError::BadMagic(m) => write!(f, "bad magic bytes {m:?}, expected {MAGIC:?}"),
            DecodeError::Malformed(what) => write!(f, "malformed tensor record: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DecodeError {
    fn from(e: io::Error) -> Self {
        DecodeError::Io(e)
    }
}

/// Writes one tensor record.
///
/// A `&mut` reference can be passed for `w` (writers are taken by value per
/// the usual `io::Write` blanket impls).
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_tensor<W: Write>(mut w: W, t: &Tensor) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(t.shape().ndim() as u32).to_le_bytes())?;
    for &d in t.shape().dims() {
        w.write_all(&(d as u64).to_le_bytes())?;
    }
    for &x in t.data() {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

/// Reads one tensor record.
///
/// A `&mut` reference can be passed for `r`.
///
/// # Errors
///
/// Returns [`DecodeError`] on I/O failure, magic mismatch or a structurally
/// invalid record (zero dims, absurd rank).
pub fn read_tensor<R: Read>(mut r: R) -> Result<Tensor, DecodeError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let ndim = read_u32(&mut r)? as usize;
    if ndim == 0 || ndim > 8 {
        return Err(DecodeError::Malformed(format!("rank {ndim} out of range")));
    }
    let mut dims = Vec::with_capacity(ndim);
    let mut numel: u64 = 1;
    for _ in 0..ndim {
        let d = read_u64(&mut r)?;
        if d == 0 || d > u32::MAX as u64 {
            return Err(DecodeError::Malformed(format!(
                "dimension {d} out of range"
            )));
        }
        numel = numel.saturating_mul(d);
        dims.push(d as usize);
    }
    if numel > (1 << 31) {
        return Err(DecodeError::Malformed(format!("{numel} elements too many")));
    }
    let mut data = vec![0.0f32; numel as usize];
    let mut buf = [0u8; 4];
    for x in &mut data {
        r.read_exact(&mut buf)?;
        *x = f32::from_le_bytes(buf);
    }
    Ok(Tensor::from_vec(data, &dims))
}

/// Writes a named collection of tensors (a checkpoint).
///
/// Names are UTF-8, length-prefixed; records are sorted by name so the
/// output is deterministic.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_named<W: Write>(mut w: W, entries: &BTreeMap<String, Tensor>) -> io::Result<()> {
    w.write_all(&(entries.len() as u32).to_le_bytes())?;
    for (name, tensor) in entries {
        let bytes = name.as_bytes();
        w.write_all(&(bytes.len() as u32).to_le_bytes())?;
        w.write_all(bytes)?;
        write_tensor(&mut w, tensor)?;
    }
    Ok(())
}

/// Reads a named collection of tensors written by [`write_named`].
///
/// # Errors
///
/// Returns [`DecodeError`] on I/O failure or malformed records.
pub fn read_named<R: Read>(mut r: R) -> Result<BTreeMap<String, Tensor>, DecodeError> {
    let count = read_u32(&mut r)? as usize;
    if count > 1 << 20 {
        return Err(DecodeError::Malformed(format!("{count} entries too many")));
    }
    let mut out = BTreeMap::new();
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 1 << 16 {
            return Err(DecodeError::Malformed(format!("name of {name_len} bytes")));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| DecodeError::Malformed("non-UTF-8 name".to_owned()))?;
        let tensor = read_tensor(&mut r)?;
        out.insert(name, tensor);
    }
    Ok(out)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tensor_round_trips() {
        let mut rng = StdRng::seed_from_u64(13);
        let t = Tensor::randn(&mut rng, &[3, 4, 5], 1.0);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t).unwrap();
        let back = read_tensor(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn named_round_trips_in_order() {
        let mut entries = BTreeMap::new();
        entries.insert("b.weight".to_owned(), Tensor::ones(&[2, 2]));
        entries.insert("a.bias".to_owned(), Tensor::zeros(&[4]));
        let mut buf = Vec::new();
        write_named(&mut buf, &entries).unwrap();
        let back = read_named(buf.as_slice()).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00".to_vec();
        match read_tensor(buf.as_slice()) {
            Err(DecodeError::BadMagic(m)) => assert_eq!(&m, b"NOPE"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn truncated_data_is_io_error() {
        let t = Tensor::ones(&[8]);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(matches!(
            read_tensor(buf.as_slice()),
            Err(DecodeError::Io(_))
        ));
    }

    #[test]
    fn zero_dim_record_is_malformed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            read_tensor(buf.as_slice()),
            Err(DecodeError::Malformed(_))
        ));
    }

    #[test]
    fn deterministic_encoding() {
        let t = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_tensor(&mut a, &t).unwrap();
        write_tensor(&mut b, &t).unwrap();
        assert_eq!(a, b);
    }
}
