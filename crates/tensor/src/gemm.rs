//! The one packed, register-tiled GEMM microkernel behind every product.
//!
//! Every dense matrix product in the workspace — `matmul`, the
//! transposed variants, and the fused-im2col convolution forward — is a
//! thin layout adapter over [`gemm`]: operands are described by
//! [`PackA`]/[`PackB`] pack sources, packed into cache-blocked panels
//! (`MC×KC` for A, `KC×NC` for B), and driven through a single `MR×NR`
//! register-tile microkernel. Convolution never materializes its column
//! matrix: the patch gather of `im2col` happens inside the B-panel pack.
//!
//! # Bit-identity contract
//!
//! Each output element accumulates its `k` terms in ascending order, in a
//! single sequential chain: the output is zeroed once, every `KC` block
//! loads the partial sum back from the output tile, adds its terms in
//! order, and stores it back. That reproduces the pre-refactor kernels'
//! chains exactly, so results are bit-identical to the historical loop
//! nests at any thread count, with or without the `simd` feature. The
//! AVX kernel (behind `--features simd`) vectorizes across output
//! *columns* — one lane per output element, each lane still a sequential
//! k-chain of `mul`+`add` (never FMA) — so it produces the same bits as
//! the scalar microkernel.
//!
//! Packing is pure staging: it never changes any chain. Products below
//! [`SMALL_FLOPS`] multiply-adds therefore skip the panels entirely and
//! run direct loop nests (the rank-1 update still uses the AVX lanes) —
//! bit-identical, just without the staging overhead that dominates at
//! the workspace's small hot shapes.
//!
//! Structural-sparsity skipping (`lhs element == 0.0` contributes
//! nothing) is bit-observable through signed zeros and non-finite inputs,
//! so it is part of each adapter's contract: `matmul`/`matmul_tn`/conv
//! forward skip exact-zero lhs elements (as they always have),
//! `matmul_nt` does not. (`matvec` stays outside the kernel entirely:
//! its historical iterator `.sum()` chain folds from `-0.0`, which a
//! `+0.0`-seeded accumulator cannot reproduce — see `crate::matmul`.)

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crate::conv::Conv2dGeom;

/// Microkernel register-tile rows (lhs rows per tile).
pub const MR: usize = 8;
/// Microkernel register-tile columns; also the AVX lane count.
pub const NR: usize = 8;
/// Rows of A packed per panel (multiple of `MR`); also the parallel
/// row-chunk size, matching the historical `BLOCK` split.
pub const MC: usize = 64;
/// Depth of each packed panel pair.
pub const KC: usize = 256;
/// Columns of B packed per panel (multiple of `NR`).
pub const NC: usize = 512;

/// Minimum `m * k * n` before a product is worth scheduling on the pool;
/// below this the fork/join overhead outweighs the work.
const PAR_FLOPS: usize = 1 << 15;

/// Below this many multiply-adds (`m * k * n`) panel packing and tile
/// staging cost more than they save, so [`gemm`] runs direct loop nests
/// instead — same per-element accumulation chains, so identical bits;
/// only the staging disappears. The AVX rank-1 update still applies.
const SMALL_FLOPS: usize = 1 << 15;

/// How the lhs operand `A: [m, k]` is stored.
#[derive(Debug, Clone, Copy)]
pub enum PackA<'a> {
    /// Row-major `[m, k]` slice: `a(i, p) = d[i * k + p]`.
    Rows(&'a [f32]),
    /// Transposed storage `[k, m]`: `a(i, p) = d[p * m + i]` (the
    /// `matmul_tn` lhs, read without materializing the transpose).
    Trans(&'a [f32]),
}

/// How the rhs operand `B: [k, n]` is produced during packing.
#[derive(Debug, Clone, Copy)]
pub enum PackB<'a> {
    /// Row-major `[k, n]` slice: `b(p, j) = d[p * n + j]`.
    Rows(&'a [f32]),
    /// Transposed storage `[n, k]`: `b(p, j) = d[j * k + p]` (the
    /// `matmul_nt` rhs, read without materializing the transpose).
    Trans(&'a [f32]),
    /// Fused im2col: `B` is the `[C*k*k, out_h*out_w]` column matrix of
    /// `image` under `geom`, gathered patch-by-patch into the panel so
    /// the column matrix never exists in memory.
    Patches {
        /// Flat `[C, H, W]` image.
        image: &'a [f32],
        /// Convolution geometry describing the patch gather.
        geom: Conv2dGeom,
    },
    /// Transposed fused im2col: `B = cols^T`, i.e. `b(p, j) =
    /// cols(j, p)` — the `matmul_nt` rhs of the convolution
    /// weight-gradient product, again without materializing `cols`.
    PatchesT {
        /// Flat `[C, H, W]` image.
        image: &'a [f32],
        /// Convolution geometry describing the patch gather.
        geom: Conv2dGeom,
    },
}

/// When true, [`gemm`] uses the scalar microkernel even if the `simd`
/// feature is compiled in and the CPU supports AVX. SeqCst like every
/// other atomic outside dv-runtime; flipping it mid-product is benign
/// because both kernels produce identical bits.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Forces (or un-forces) the scalar microkernel at runtime.
///
/// Lets one binary benchmark or cross-check both kernels; a no-op when
/// the `simd` feature is off.
pub fn force_scalar_kernels(on: bool) {
    FORCE_SCALAR.store(on, Ordering::SeqCst);
}

/// True when the `simd` feature is compiled in and the running CPU
/// supports the AVX kernel.
pub fn simd_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        crate::gemm_simd::avx_available()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// True when the next [`gemm`] call will use the AVX microkernel
/// (compiled in, CPU-supported, and not forced off).
pub fn simd_kernels_active() -> bool {
    simd_available() && !FORCE_SCALAR.load(Ordering::SeqCst)
}

thread_local! {
    /// Per-thread packed A panel (`MC × KC` floats), grown once and
    /// reused for every product on that thread thereafter.
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread packed B panel (`KC × NC` floats).
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `C = A · B` (`[m, k] × [k, n] → [m, n]`) through the packed microkernel.
///
/// `out` is zeroed first; `skip_zero_lhs` selects the structural-sparsity
/// skip (see the module docs for which adapters use it). Large products
/// split `MC`-row chunks of the output across the `dv-runtime` pool;
/// every element keeps its sequential ascending-`k` accumulation chain,
/// so results are bit-identical at any thread count.
///
/// # Panics
///
/// Panics if any operand length disagrees with the stated dimensions.
pub fn gemm(
    a: PackA<'_>,
    b: PackB<'_>,
    m: usize,
    k: usize,
    n: usize,
    skip_zero_lhs: bool,
    out: &mut [f32],
) {
    check_dims(&a, &b, m, k, n);
    assert_eq!(out.len(), m * n, "gemm out length mismatch");
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let simd = simd_kernels_active();
    if m * k * n < SMALL_FLOPS && small_gemm(&a, &b, m, k, n, skip_zero_lhs, simd, out) {
        let c = counters();
        c.calls.inc();
        c.small.inc();
        return;
    }
    let use_par = m > MC && m * k * n >= PAR_FLOPS;
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            PACK_B.with(|cell| {
                let mut bbuf = cell.borrow_mut();
                if bbuf.len() < KC * NC {
                    bbuf.resize(KC * NC, 0.0);
                }
                pack_b(&b, k, n, pc, kc, jc, nc, &mut bbuf);
                let packed_b: &[f32] = &bbuf;
                if use_par {
                    // One task per MC-row chunk: chunks own disjoint row
                    // slices of `out` and write only columns jc..jc+nc.
                    dv_runtime::par_chunks_mut(out, MC * n, |ci, rows| {
                        let i0 = ci * MC;
                        let mc = MC.min(m - i0);
                        with_pack_a(|abuf| {
                            pack_a(&a, m, k, i0, mc, pc, kc, abuf);
                            compute_panel(
                                abuf,
                                packed_b,
                                kc,
                                mc,
                                nc,
                                jc,
                                n,
                                skip_zero_lhs,
                                simd,
                                rows,
                            );
                        });
                    });
                } else {
                    for i0 in (0..m).step_by(MC) {
                        let mc = MC.min(m - i0);
                        with_pack_a(|abuf| {
                            pack_a(&a, m, k, i0, mc, pc, kc, abuf);
                            compute_panel(
                                abuf,
                                packed_b,
                                kc,
                                mc,
                                nc,
                                jc,
                                n,
                                skip_zero_lhs,
                                simd,
                                &mut out[i0 * n..(i0 + mc) * n],
                            );
                        });
                    }
                }
            });
        }
    }
    record_counters(m, k, n);
}

/// Fused-im2col convolution forward: `out = W · im2col(image)` for
/// `W: [out_channels, C*k*k]`, without materializing the column matrix.
///
/// Bit-identical to explicit `im2col_into` + `matmul_into` (same skip
/// semantics on the weight operand, same accumulation chains); the bias
/// broadcast stays with the caller, as it always has.
///
/// # Panics
///
/// Panics if any slice length disagrees with `geom`/`out_channels`.
pub fn conv2d_into(
    weight: &[f32],
    out_channels: usize,
    image: &[f32],
    geom: &Conv2dGeom,
    out: &mut [f32],
) {
    dv_trace::span!("tensor.conv_gemm");
    gemm(
        PackA::Rows(weight),
        PackB::Patches { image, geom: *geom },
        out_channels,
        geom.col_rows(),
        geom.col_cols(),
        true,
        out,
    );
}

/// Fused convolution weight gradient: `out = G · im2col(image)^T` for
/// `G: [out_channels, out_h*out_w]`, the training-path replacement for
/// `matmul_nt(g, cols)` that never materializes `cols`.
///
/// `matmul_nt` semantics: no structural-sparsity skip, bit-identical to
/// the explicit product.
///
/// # Panics
///
/// Panics if any slice length disagrees with `geom`/`out_channels`.
pub fn conv2d_grad_weight_into(
    g: &[f32],
    out_channels: usize,
    image: &[f32],
    geom: &Conv2dGeom,
    out: &mut [f32],
) {
    dv_trace::span!("tensor.conv_gemm");
    gemm(
        PackA::Rows(g),
        PackB::PatchesT { image, geom: *geom },
        out_channels,
        geom.col_cols(),
        geom.col_rows(),
        false,
        out,
    );
}

/// Transposes a row-major `[m, n]` slice into a `[n, m]` buffer.
///
/// # Panics
///
/// Panics if either slice length is not `m * n`.
pub fn transpose_into(src: &[f32], m: usize, n: usize, dst: &mut [f32]) {
    assert_eq!(src.len(), m * n, "transpose_into src length mismatch");
    assert_eq!(dst.len(), m * n, "transpose_into dst length mismatch");
    for (i, row) in src.chunks_exact(n).enumerate() {
        for (j, &v) in row.iter().enumerate() {
            dst[j * m + i] = v;
        }
    }
}

/// Exact-iteration `f64` dot product of two `f32` slices: widen each
/// factor, multiply, and sum left to right. The shared primitive behind
/// the OCSVM linear kernel and `linalg::quad_form_inv`.
///
/// # Panics
///
/// Panics (debug builds) if the slices have different lengths.
pub fn dot_f64(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot_f64 length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

/// Exact-iteration `f64` squared Euclidean distance between two `f32`
/// slices, the primitive behind the OCSVM RBF kernel.
///
/// # Panics
///
/// Panics (debug builds) if the slices have different lengths.
pub fn sqdist_f64(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sqdist_f64 length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum()
}

/// Fills the symmetric `n × n` matrix `q` from `eval(i, j)` evaluated on
/// the upper triangle (rows fan out across the pool, `j >= i` per row),
/// then mirrors into the lower triangle sequentially.
///
/// This is the exact structure (and therefore bit pattern) of the OCSVM
/// gram assembly at any thread count.
///
/// # Panics
///
/// Panics if `q.len() != n * n`.
pub fn pairwise_upper_f64<F>(n: usize, q: &mut [f64], eval: F)
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    assert_eq!(q.len(), n * n, "pairwise_upper_f64 length mismatch");
    if n == 0 {
        return;
    }
    dv_runtime::par_chunks_mut(q, n, |i, row| {
        for (j, slot) in row.iter_mut().enumerate().skip(i) {
            *slot = eval(i, j);
        }
    });
    for i in 0..n {
        for j in 0..i {
            q[i * n + j] = q[j * n + i];
        }
    }
}

/// Direct loops for small products. Every output element keeps the same
/// ascending-`k` accumulation chain as the packed path (which zero-fills
/// the output and loads partial sums back per `KC` block), so the bits
/// are identical — packing is pure staging. Returns `false` for pack
/// sources without a direct form (`PackA::Trans`, used only by
/// training-path products), which fall through to the packed kernel.
#[allow(clippy::too_many_arguments)]
fn small_gemm(
    a: &PackA<'_>,
    b: &PackB<'_>,
    m: usize,
    k: usize,
    n: usize,
    skip: bool,
    simd: bool,
    out: &mut [f32],
) -> bool {
    let PackA::Rows(ad) = *a else {
        return false;
    };
    let _ = m;
    match *b {
        PackB::Rows(bd) => small_rows(simd, ad, bd, k, n, skip, out),
        PackB::Trans(bd) => {
            for (arow, orow) in ad.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
                for (slot, bcol) in orow.iter_mut().zip(bd.chunks_exact(k)) {
                    *slot = dot_skip(arow, bcol, skip);
                }
            }
        }
        PackB::Patches { image, geom } => PACK_B.with(|cell| {
            let mut buf = cell.borrow_mut();
            if buf.len() < n {
                buf.resize(n, 0.0);
            }
            let brow = &mut buf[..n];
            for kk in 0..k {
                gather_patch_row(image, &geom, kk, brow);
                col_update(simd, ad, k, kk, brow, skip, out, n);
            }
        }),
        PackB::PatchesT { image, geom } => PACK_B.with(|cell| {
            let mut buf = cell.borrow_mut();
            if buf.len() < k {
                buf.resize(k, 0.0);
            }
            let bcol = &mut buf[..k];
            for j in 0..n {
                // Column `j` of `B = cols^T` is row `j` of the column
                // matrix, so the forward gather serves both layouts.
                gather_patch_row(image, &geom, j, bcol);
                for (arow, orow) in ad.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
                    orow[j] = dot_skip(arow, bcol, skip);
                }
            }
        }),
    }
    true
}

/// The small-path `C += A · B` nest for row-major operands, dispatched to
/// the AVX version once per product so no per-row-update call crosses the
/// `target_feature` boundary. Both arms walk identical chains.
#[cfg_attr(all(feature = "simd", target_arch = "x86_64"), allow(unsafe_code))]
fn small_rows(simd: bool, ad: &[f32], bd: &[f32], k: usize, n: usize, skip: bool, out: &mut [f32]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd {
        // SAFETY: `simd` is only true when `avx_available()` confirmed AVX
        // support on this CPU at runtime, which is the target-feature
        // routine's only precondition; it touches memory only through
        // bounds-checked slices.
        unsafe {
            if skip {
                crate::gemm_simd::small_rows_avx::<true>(ad, bd, k, n, out);
            } else {
                crate::gemm_simd::small_rows_avx::<false>(ad, bd, k, n, out);
            }
        }
        return;
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    let _ = simd;
    for (arow, orow) in ad.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        for (kk, &av) in arow.iter().enumerate() {
            // dv-lint: allow(float-eq, reason = "structural sparsity skip: exact stored zero contributes nothing to the accumulation")
            if skip && av == 0.0 {
                continue;
            }
            for (x, &bv) in orow.iter_mut().zip(&bd[kk * n..(kk + 1) * n]) {
                *x += av * bv;
            }
        }
    }
}

/// One fused-conv small-path step: rank-1 update of every output row with
/// column `kk` of the weights and one gathered row of the column matrix.
/// Dispatched to AVX once per `kk`, rows loop inside.
#[cfg_attr(all(feature = "simd", target_arch = "x86_64"), allow(unsafe_code))]
#[allow(clippy::too_many_arguments)]
fn col_update(
    simd: bool,
    ad: &[f32],
    k: usize,
    kk: usize,
    brow: &[f32],
    skip: bool,
    out: &mut [f32],
    n: usize,
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd {
        // SAFETY: `simd` is only true when `avx_available()` confirmed AVX
        // support on this CPU at runtime, which is the target-feature
        // routine's only precondition; it touches memory only through
        // bounds-checked slices.
        unsafe {
            if skip {
                crate::gemm_simd::col_update_avx::<true>(ad, k, kk, brow, out, n);
            } else {
                crate::gemm_simd::col_update_avx::<false>(ad, k, kk, brow, out, n);
            }
        }
        return;
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    let _ = simd;
    for (arow, orow) in ad.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        let av = arow[kk];
        // dv-lint: allow(float-eq, reason = "structural sparsity skip: exact stored zero contributes nothing to the accumulation")
        if skip && av == 0.0 {
            continue;
        }
        for (x, &bv) in orow.iter_mut().zip(brow) {
            *x += av * bv;
        }
    }
}

/// Per-element dot with the optional structural skip: explicit `0.0f32`
/// accumulator, ascending index — the chain the packed kernel produces
/// for a zero-filled output (and the historical `matmul_nt` chain).
fn dot_skip(a: &[f32], b: &[f32], skip: bool) -> f32 {
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        // dv-lint: allow(float-eq, reason = "structural sparsity skip: exact stored zero contributes nothing to the accumulation")
        if skip && x == 0.0 {
            continue;
        }
        acc += x * y;
    }
    acc
}

/// Gathers logical row `row` of the im2col column matrix (one kernel tap
/// across all output positions) into a contiguous buffer; out-of-bounds
/// taps write the zero padding.
fn gather_patch_row(image: &[f32], geom: &Conv2dGeom, row: usize, dst: &mut [f32]) {
    let ks = geom.kernel;
    let (ih, iw) = (geom.in_h as isize, geom.in_w as isize);
    let chan_len = geom.in_h * geom.in_w;
    let ow = geom.out_w();
    let kx = row % ks;
    let ky = (row / ks) % ks;
    let c = row / (ks * ks);
    let chan = &image[c * chan_len..(c + 1) * chan_len];
    let mut oy = 0usize;
    let mut ox = 0usize;
    for slot in dst.iter_mut() {
        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
        *slot = if iy >= 0 && iy < ih && ix >= 0 && ix < iw {
            chan[iy as usize * geom.in_w + ix as usize]
        } else {
            0.0
        };
        ox += 1;
        if ox == ow {
            ox = 0;
            oy += 1;
        }
    }
}

fn check_dims(a: &PackA<'_>, b: &PackB<'_>, m: usize, k: usize, n: usize) {
    match *a {
        PackA::Rows(d) => assert_eq!(d.len(), m * k, "gemm lhs length mismatch"),
        PackA::Trans(d) => assert_eq!(d.len(), k * m, "gemm lhs length mismatch"),
    }
    match *b {
        PackB::Rows(d) => assert_eq!(d.len(), k * n, "gemm rhs length mismatch"),
        PackB::Trans(d) => assert_eq!(d.len(), n * k, "gemm rhs length mismatch"),
        PackB::Patches { image, geom } => {
            assert_eq!(
                image.len(),
                geom.in_channels * geom.in_h * geom.in_w,
                "gemm conv image length mismatch"
            );
            assert_eq!(k, geom.col_rows(), "gemm conv k/col_rows mismatch");
            assert_eq!(n, geom.col_cols(), "gemm conv n/col_cols mismatch");
        }
        PackB::PatchesT { image, geom } => {
            assert_eq!(
                image.len(),
                geom.in_channels * geom.in_h * geom.in_w,
                "gemm conv image length mismatch"
            );
            assert_eq!(k, geom.col_cols(), "gemm conv k/col_cols mismatch");
            assert_eq!(n, geom.col_rows(), "gemm conv n/col_rows mismatch");
        }
    }
}

fn with_pack_a<R>(f: impl FnOnce(&mut [f32]) -> R) -> R {
    PACK_A.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < MC * KC {
            buf.resize(MC * KC, 0.0);
        }
        f(&mut buf)
    })
}

/// Packs rows `i0..i0+mc` (depth `pc..pc+kc`) of the lhs into MR-row
/// groups: group `ig` stores `a(i0 + ig*MR + ir, pc + kk)` at
/// `[kk * MR + ir]`. Rows past `mc` are zero-padded; the microkernel
/// never stores their lanes back.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    a: &PackA<'_>,
    m: usize,
    k: usize,
    i0: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    dst: &mut [f32],
) {
    let _ = k;
    let groups = mc.div_ceil(MR);
    let used = groups * MR * kc;
    dst[..used].fill(0.0);
    for (ig, g) in dst[..used].chunks_exact_mut(MR * kc).enumerate() {
        let rows = MR.min(mc - ig * MR);
        match *a {
            PackA::Rows(d) => {
                for ir in 0..rows {
                    let row = i0 + ig * MR + ir;
                    let src = &d[row * k + pc..row * k + pc + kc];
                    for (kk, &v) in src.iter().enumerate() {
                        g[kk * MR + ir] = v;
                    }
                }
            }
            PackA::Trans(d) => {
                // Stored [k, m]: for a fixed depth the rows are contiguous.
                for kk in 0..kc {
                    let src = &d[(pc + kk) * m + i0 + ig * MR..][..rows];
                    g[kk * MR..kk * MR + rows].copy_from_slice(src);
                }
            }
        }
    }
}

/// Packs depth `pc..pc+kc`, columns `jc..jc+nc` of the rhs into NR-column
/// groups: group `jg` stores `b(pc + kk, jc + jg*NR + jr)` at
/// `[kk * NR + jr]`. Columns past `nc` are zero-padded; padded lanes are
/// computed but never stored back.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    b: &PackB<'_>,
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    dst: &mut [f32],
) {
    let groups = nc.div_ceil(NR);
    let used = groups * NR * kc;
    dst[..used].fill(0.0);
    match *b {
        PackB::Rows(d) => {
            for (jg, g) in dst[..used].chunks_exact_mut(NR * kc).enumerate() {
                let cols = NR.min(nc - jg * NR);
                for kk in 0..kc {
                    let src = &d[(pc + kk) * n + jc + jg * NR..][..cols];
                    g[kk * NR..kk * NR + cols].copy_from_slice(src);
                }
            }
        }
        PackB::Trans(d) => {
            for (jg, g) in dst[..used].chunks_exact_mut(NR * kc).enumerate() {
                let cols = NR.min(nc - jg * NR);
                for jr in 0..cols {
                    let j = jc + jg * NR + jr;
                    let src = &d[j * k + pc..j * k + pc + kc];
                    for (kk, &v) in src.iter().enumerate() {
                        g[kk * NR + jr] = v;
                    }
                }
            }
        }
        PackB::Patches { image, geom } => pack_b_patches(image, &geom, pc, kc, jc, nc, dst),
        PackB::PatchesT { image, geom } => pack_b_patches_t(image, &geom, pc, kc, jc, nc, dst),
    }
}

/// Patch-gather pack: logical row `pc + kk` of the column matrix is the
/// kernel tap `(c, ky, kx)`, logical column `jc + ..` the output position
/// `(oy, ox)`; out-of-bounds taps stay at the zero fill (zero padding).
fn pack_b_patches(
    image: &[f32],
    geom: &Conv2dGeom,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    dst: &mut [f32],
) {
    let ks = geom.kernel;
    let (ih, iw) = (geom.in_h as isize, geom.in_w as isize);
    let chan_len = geom.in_h * geom.in_w;
    let ow = geom.out_w();
    for kk in 0..kc {
        let row = pc + kk;
        let kx = row % ks;
        let ky = (row / ks) % ks;
        let c = row / (ks * ks);
        let chan = &image[c * chan_len..(c + 1) * chan_len];
        let mut oy = jc / ow;
        let mut ox = jc % ow;
        let mut jg = 0usize;
        let mut jr = 0usize;
        for _ in 0..nc {
            let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
            if iy >= 0 && iy < ih && ix >= 0 && ix < iw {
                dst[jg * NR * kc + kk * NR + jr] = chan[iy as usize * geom.in_w + ix as usize];
            }
            ox += 1;
            if ox == ow {
                ox = 0;
                oy += 1;
            }
            jr += 1;
            if jr == NR {
                jr = 0;
                jg += 1;
            }
        }
    }
}

/// Transposed patch-gather pack: logical row `pc + kk` is the output
/// position `(oy, ox)`, logical column `jc + ..` the kernel tap — i.e.
/// `b(p, j) = cols(j, p)` without ever building `cols`.
fn pack_b_patches_t(
    image: &[f32],
    geom: &Conv2dGeom,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    dst: &mut [f32],
) {
    let ks = geom.kernel;
    let (ih, iw) = (geom.in_h as isize, geom.in_w as isize);
    let chan_len = geom.in_h * geom.in_w;
    let ow = geom.out_w();
    for jidx in 0..nc {
        let col_row = jc + jidx;
        let kx = col_row % ks;
        let ky = (col_row / ks) % ks;
        let c = col_row / (ks * ks);
        let chan = &image[c * chan_len..(c + 1) * chan_len];
        let (jg, jr) = (jidx / NR, jidx % NR);
        let mut oy = pc / ow;
        let mut ox = pc % ow;
        for kk in 0..kc {
            let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
            if iy >= 0 && iy < ih && ix >= 0 && ix < iw {
                dst[jg * NR * kc + kk * NR + jr] = chan[iy as usize * geom.in_w + ix as usize];
            }
            ox += 1;
            if ox == ow {
                ox = 0;
                oy += 1;
            }
        }
    }
}

/// Runs the microkernel over every `MR×NR` tile of one packed panel pair.
/// `rows` is the `mc × n_stride` output chunk; only columns
/// `jc..jc+nc` are touched. `jg`-outer order keeps each B group hot in
/// L1 across the A groups.
#[allow(clippy::too_many_arguments)]
fn compute_panel(
    pa: &[f32],
    pb: &[f32],
    kc: usize,
    mc: usize,
    nc: usize,
    jc: usize,
    n_stride: usize,
    skip: bool,
    simd: bool,
    rows: &mut [f32],
) {
    let mgroups = mc.div_ceil(MR);
    let ngroups = nc.div_ceil(NR);
    for jg in 0..ngroups {
        let pbg = &pb[jg * NR * kc..(jg + 1) * NR * kc];
        let n_eff = NR.min(nc - jg * NR);
        for ig in 0..mgroups {
            let pag = &pa[ig * MR * kc..(ig + 1) * MR * kc];
            let m_eff = MR.min(mc - ig * MR);
            let start = ig * MR * n_stride + jc + jg * NR;
            run_kernel(
                simd,
                skip,
                pag,
                pbg,
                kc,
                m_eff,
                n_eff,
                &mut rows[start..],
                n_stride,
            );
        }
    }
}

/// Dispatches one tile to the AVX kernel when active, else the scalar
/// microkernel. Both produce identical bits (see module docs).
#[allow(clippy::too_many_arguments)]
#[cfg_attr(all(feature = "simd", target_arch = "x86_64"), allow(unsafe_code))]
#[inline]
fn run_kernel(
    simd: bool,
    skip: bool,
    pa: &[f32],
    pb: &[f32],
    kc: usize,
    m_eff: usize,
    n_eff: usize,
    c: &mut [f32],
    stride: usize,
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd {
        // SAFETY: `simd` is only true when `avx_available()` confirmed AVX
        // support on this CPU at runtime, which is the target-feature
        // kernel's only precondition; all memory access inside it is
        // bounds-checked slice indexing.
        unsafe {
            if skip {
                crate::gemm_simd::kernel_avx::<true>(pa, pb, kc, m_eff, n_eff, c, stride);
            } else {
                crate::gemm_simd::kernel_avx::<false>(pa, pb, kc, m_eff, n_eff, c, stride);
            }
        }
        return;
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    let _ = simd;
    if skip {
        kernel_scalar::<true>(pa, pb, kc, m_eff, n_eff, c, stride);
    } else {
        kernel_scalar::<false>(pa, pb, kc, m_eff, n_eff, c, stride);
    }
}

/// Scalar `MR×NR` microkernel: loads each live output row into an
/// `NR`-wide accumulator, adds the panel's `kc` terms in ascending order,
/// and stores the live lanes back. `SKIP` selects the structural-sparsity
/// skip on lhs elements.
fn kernel_scalar<const SKIP: bool>(
    pa: &[f32],
    pb: &[f32],
    kc: usize,
    m_eff: usize,
    n_eff: usize,
    c: &mut [f32],
    stride: usize,
) {
    for ir in 0..m_eff {
        let crow = &mut c[ir * stride..ir * stride + n_eff];
        let mut acc = [0.0f32; NR];
        acc[..n_eff].copy_from_slice(crow);
        for kk in 0..kc {
            let a = pa[kk * MR + ir];
            // dv-lint: allow(float-eq, reason = "structural sparsity skip: exact stored zero contributes nothing to the accumulation")
            if SKIP && a == 0.0 {
                continue;
            }
            let brow = &pb[kk * NR..(kk + 1) * NR];
            for (x, &bv) in acc.iter_mut().zip(brow) {
                *x += a * bv;
            }
        }
        crow.copy_from_slice(&acc[..n_eff]);
    }
}

/// Cached handles to the `tensor.gemm.*` registry counters — resolved
/// once, so the per-call cost is plain atomic adds rather than name
/// lookups (which would dominate sub-microsecond small products).
struct GemmCounters {
    calls: &'static dv_trace::Counter,
    small: &'static dv_trace::Counter,
    pack_b_panels: &'static dv_trace::Counter,
    pack_a_panels: &'static dv_trace::Counter,
    tiles: &'static dv_trace::Counter,
}

fn counters() -> &'static GemmCounters {
    static COUNTERS: OnceLock<GemmCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = dv_trace::global();
        GemmCounters {
            calls: reg.counter("tensor.gemm.calls"),
            small: reg.counter("tensor.gemm.small"),
            pack_b_panels: reg.counter("tensor.gemm.pack_b_panels"),
            pack_a_panels: reg.counter("tensor.gemm.pack_a_panels"),
            tiles: reg.counter("tensor.gemm.tiles"),
        }
    })
}

/// Bumps the `tensor.gemm.*` registry counters for one completed product.
fn record_counters(m: usize, k: usize, n: usize) {
    let c = counters();
    c.calls.inc();
    let kblocks = k.div_ceil(KC) as u64;
    let jblocks = n.div_ceil(NC) as u64;
    c.pack_b_panels.add(kblocks * jblocks);
    c.pack_a_panels
        .add(kblocks * jblocks * m.div_ceil(MC) as u64);
    c.tiles
        .add((m.div_ceil(MR) * n.div_ceil(NR)) as u64 * kblocks);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{im2col_into, Conv2dGeom};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn randv(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len)
            .map(|_| {
                let v: f32 = rng.gen_range(-2.0..2.0);
                // Mix in exact zeros so the skip paths are exercised.
                if rng.gen_range(0..4) == 0 {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }

    fn naive(a: &[f32], m: usize, k: usize, b: &[f32], n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn packed_gemm_matches_naive_across_shapes_and_blocking_edges() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (8, 8, 8),
            (9, 7, 17),
            (65, 300, 33),
            (130, 70, 520),
            (1, 150, 32),
        ] {
            let a = randv(&mut rng, m * k);
            let b = randv(&mut rng, k * n);
            let mut out = vec![1.0f32; m * n];
            for skip in [false, true] {
                gemm(PackA::Rows(&a), PackB::Rows(&b), m, k, n, skip, &mut out);
                let want = naive(&a, m, k, &b, n);
                for (got, want) in out.iter().zip(&want) {
                    assert!((got - want).abs() <= 1e-3, "{m}x{k}x{n}: {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn trans_pack_sources_match_explicit_transposes() {
        let mut rng = StdRng::seed_from_u64(8);
        let (m, k, n) = (13, 21, 9);
        let a = randv(&mut rng, m * k);
        let b = randv(&mut rng, k * n);
        let mut at = vec![0.0f32; m * k];
        transpose_into(&a, m, k, &mut at);
        let mut bt = vec![0.0f32; k * n];
        transpose_into(&b, k, n, &mut bt);

        let mut want = vec![0.0f32; m * n];
        gemm(PackA::Rows(&a), PackB::Rows(&b), m, k, n, false, &mut want);

        let mut got = vec![0.0f32; m * n];
        gemm(PackA::Trans(&at), PackB::Rows(&b), m, k, n, false, &mut got);
        assert_eq!(bits(&got), bits(&want), "PackA::Trans");

        gemm(PackA::Rows(&a), PackB::Trans(&bt), m, k, n, false, &mut got);
        assert_eq!(bits(&got), bits(&want), "PackB::Trans");
    }

    #[test]
    fn fused_patches_match_explicit_im2col() {
        let mut rng = StdRng::seed_from_u64(9);
        for &(c, h, w, ks, s, p) in &[(1, 5, 5, 3, 1, 0), (2, 6, 7, 3, 1, 1), (3, 8, 8, 2, 2, 0)] {
            let geom = Conv2dGeom {
                in_channels: c,
                in_h: h,
                in_w: w,
                kernel: ks,
                stride: s,
                pad: p,
            };
            let image = randv(&mut rng, c * h * w);
            let oc = 4;
            let weight = randv(&mut rng, oc * geom.col_rows());
            let mut cols = vec![0.0f32; geom.col_rows() * geom.col_cols()];
            im2col_into(&image, &geom, &mut cols);

            // Forward: fused pack vs explicit cols, same skip semantics.
            let mut want = vec![0.0f32; oc * geom.col_cols()];
            gemm(
                PackA::Rows(&weight),
                PackB::Rows(&cols),
                oc,
                geom.col_rows(),
                geom.col_cols(),
                true,
                &mut want,
            );
            let mut got = vec![0.0f32; oc * geom.col_cols()];
            conv2d_into(&weight, oc, &image, &geom, &mut got);
            assert_eq!(bits(&got), bits(&want), "forward {c}x{h}x{w} k{ks}");

            // Weight gradient: fused transposed pack vs explicit cols^T.
            let g = randv(&mut rng, oc * geom.col_cols());
            let mut want = vec![0.0f32; oc * geom.col_rows()];
            gemm(
                PackA::Rows(&g),
                PackB::Trans(&cols),
                oc,
                geom.col_cols(),
                geom.col_rows(),
                false,
                &mut want,
            );
            let mut got = vec![0.0f32; oc * geom.col_rows()];
            conv2d_grad_weight_into(&g, oc, &image, &geom, &mut got);
            assert_eq!(bits(&got), bits(&want), "grad_weight {c}x{h}x{w} k{ks}");
        }
    }

    #[test]
    fn force_scalar_round_trips() {
        force_scalar_kernels(true);
        assert!(!simd_kernels_active());
        force_scalar_kernels(false);
        assert_eq!(simd_kernels_active(), simd_available());
    }

    #[test]
    fn degenerate_dims_zero_the_output() {
        let mut out = vec![5.0f32; 6];
        gemm(PackA::Rows(&[]), PackB::Rows(&[]), 2, 0, 3, true, &mut out);
        assert_eq!(out, vec![0.0; 6]);
    }

    #[test]
    fn pairwise_upper_is_symmetric() {
        let q_ref: Vec<f64> = (0..16).map(|x| x as f64).collect();
        let mut q = vec![0.0f64; 16];
        pairwise_upper_f64(4, &mut q, |i, j| q_ref[i * 4 + j] + q_ref[j * 4 + i]);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(q[i * 4 + j], q[j * 4 + i]);
            }
        }
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }
}
