//! Small dense linear algebra: Cholesky factorization and SPD solves.
//!
//! Used by the Mahalanobis-distance detector (class-conditional Gaussians
//! share a covariance matrix that must be inverted once).

use crate::tensor::Tensor;

/// Error for factorization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Index of the pivot that failed.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
///
/// # Errors
///
/// Returns [`NotPositiveDefinite`] if a pivot is non-positive.
///
/// # Panics
///
/// Panics if `a` is not a square rank-2 tensor.
pub fn cholesky(a: &Tensor) -> Result<Tensor, NotPositiveDefinite> {
    assert_eq!(a.shape().ndim(), 2, "cholesky expects a matrix");
    let n = a.shape().dim(0);
    assert_eq!(n, a.shape().dim(1), "cholesky expects a square matrix");
    let ad = a.data();
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = ad[i * n + j] as f64;
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(NotPositiveDefinite { pivot: i });
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Ok(Tensor::from_vec(
        l.iter().map(|&x| x as f32).collect(),
        &[n, n],
    ))
}

/// Solves `A x = b` for symmetric positive definite `A` via Cholesky.
///
/// # Errors
///
/// Returns [`NotPositiveDefinite`] if the factorization fails.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn solve_spd(a: &Tensor, b: &Tensor) -> Result<Tensor, NotPositiveDefinite> {
    let l = cholesky(a)?;
    Ok(solve_with_cholesky(&l, b))
}

/// Solves `A x = b` given the precomputed Cholesky factor `L` of `A`
/// (forward then backward substitution).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn solve_with_cholesky(l: &Tensor, b: &Tensor) -> Tensor {
    let n = l.shape().dim(0);
    assert_eq!(b.shape().ndim(), 1, "rhs must be a vector");
    assert_eq!(b.numel(), n, "rhs length mismatch");
    let ld = l.data();
    let mut y = vec![0.0f64; n];
    // L y = b.
    for i in 0..n {
        let mut sum = b.data()[i] as f64;
        for k in 0..i {
            sum -= ld[i * n + k] as f64 * y[k];
        }
        y[i] = sum / ld[i * n + i] as f64;
    }
    // L^T x = y.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= ld[k * n + i] as f64 * x[k];
        }
        x[i] = sum / ld[i * n + i] as f64;
    }
    Tensor::from_vec(x.iter().map(|&v| v as f32).collect(), &[n])
}

/// The quadratic form `v^T A^{-1} v` given the Cholesky factor `L` of `A`
/// — the squared Mahalanobis distance when `A` is a covariance and `v` a
/// centered sample.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn quad_form_inv(l: &Tensor, v: &Tensor) -> f64 {
    let x = solve_with_cholesky(l, v);
    crate::gemm::dot_f64(v.data(), x.data())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::{matmul, transpose};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spd(n: usize, seed: u64) -> Tensor {
        // A = M M^T + n*I is SPD for any M.
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Tensor::randn(&mut rng, &[n, n], 1.0);
        let mut a = matmul(&m, &transpose(&m));
        for i in 0..n {
            let v = a.at(&[i, i]) + n as f32;
            a.set(&[i, i], v);
        }
        a
    }

    #[test]
    fn cholesky_reconstructs_the_matrix() {
        let a = spd(5, 0);
        let l = cholesky(&a).unwrap();
        let back = matmul(&l, &transpose(&l));
        for (x, y) in back.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-2 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd(6, 1);
        let x_true = Tensor::from_vec((0..6).map(|i| i as f32 - 2.5).collect(), &[6]);
        let b = crate::matmul::matvec(&a, &x_true);
        let x = solve_spd(&a, &b).unwrap();
        for (got, want) in x.data().iter().zip(x_true.data()) {
            assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
    }

    #[test]
    fn quad_form_matches_explicit_solve() {
        let a = spd(4, 2);
        let l = cholesky(&a).unwrap();
        let v = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[4]);
        let expected: f64 = {
            let x = solve_spd(&a, &v).unwrap();
            v.data()
                .iter()
                .zip(x.data())
                .map(|(&p, &q)| p as f64 * q as f64)
                .sum()
        };
        assert!((quad_form_inv(&l, &v) - expected).abs() < 1e-6);
        // Quadratic forms of SPD inverses are positive.
        assert!(quad_form_inv(&l, &v) > 0.0);
    }

    #[test]
    fn identity_quad_form_is_squared_norm() {
        let l = cholesky(&Tensor::eye(3)).unwrap();
        let v = Tensor::from_vec(vec![3.0, 4.0, 0.0], &[3]);
        assert!((quad_form_inv(&l, &v) - 25.0).abs() < 1e-5);
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 2.0, 1.0], &[2, 2]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_err());
    }
}
