//! Shape and stride bookkeeping for row-major tensors.

use std::fmt;

/// The dimensions of a [`Tensor`](crate::Tensor), stored outermost-first.
///
/// A `Shape` is immutable once constructed; reshaping a tensor builds a new
/// `Shape`. Strides are implied row-major (C order).
///
/// # Examples
///
/// ```
/// use dv_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.offset(&[1, 2, 3]), 23);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any dimension is zero: zero-sized
    /// tensors are never meaningful in this workspace and always indicate
    /// a logic error upstream.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape dimensions must be positive, got {dims:?}"
        );
        Self {
            dims: dims.to_vec(),
        }
    }

    /// The dimension list, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.ndim()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides (in elements, not bytes).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(&self.dims).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} (size {d})");
            off += i * strides[axis];
        }
        off
    }

    /// Whether two shapes have identical dimension lists.
    pub fn same_dims(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "[{}]", parts.join("x"))
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.strides(), vec![6, 2, 1]);
    }

    #[test]
    fn offset_walks_row_major_order() {
        let s = Shape::new(&[2, 3]);
        let mut expected = 0;
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(s.offset(&[i, j]), expected);
                expected += 1;
            }
        }
    }

    #[test]
    fn numel_is_product() {
        assert_eq!(Shape::new(&[5]).numel(), 5);
        assert_eq!(Shape::new(&[2, 3, 4]).numel(), 24);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_shape_panics() {
        let _ = Shape::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_panics() {
        let _ = Shape::new(&[3, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_offset_panics() {
        let s = Shape::new(&[2, 2]);
        let _ = s.offset(&[2, 0]);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[1, 28, 28]).to_string(), "[1x28x28]");
    }
}
