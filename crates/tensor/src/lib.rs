//! Dense `f32` tensor library underpinning the Deep Validation reproduction.
//!
//! The crate provides the numeric substrate every other crate builds on:
//!
//! - [`Shape`]: dimension bookkeeping with row-major strides,
//! - [`Tensor`]: contiguous row-major storage with elementwise ops,
//!   reductions and random initialization,
//! - [`matmul`]: blocked dense matrix multiplication (plus transposed
//!   variants used by backpropagation),
//! - [`conv`]: `im2col` / `col2im` lowering used by the convolution layers,
//! - [`io`]: a tiny versioned binary format used to cache trained models
//!   between experiment runs.
//!
//! # Examples
//!
//! ```
//! use dv_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = dv_tensor::matmul::matmul(&a, &b);
//! assert_eq!(c.data(), a.data());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
pub mod io;
pub mod linalg;
pub mod matmul;
pub mod shape;
pub mod stats;
pub mod tensor;
pub mod view;
pub mod workspace;

pub use shape::Shape;
pub use tensor::Tensor;
pub use view::{TensorView, TensorViewMut};
pub use workspace::{SlotAllocator, Workspace};
