//! Dense `f32` tensor library underpinning the Deep Validation reproduction.
//!
//! The crate provides the numeric substrate every other crate builds on:
//!
//! - [`Shape`]: dimension bookkeeping with row-major strides,
//! - [`Tensor`]: contiguous row-major storage with elementwise ops,
//!   reductions and random initialization,
//! - [`gemm`]: the packed, register-tiled GEMM microkernel (optionally
//!   AVX-vectorized behind the `simd` feature) every product routes
//!   through,
//! - [`matmul`]: dense matrix multiplication (plus transposed variants
//!   used by backpropagation) as thin adapters over [`gemm`],
//! - [`conv`]: `im2col` / `col2im` lowering used by the convolution
//!   layers' training adjoints; inference fuses the patch gather into
//!   the GEMM pack instead,
//! - [`io`]: a tiny versioned binary format used to cache trained models
//!   between experiment runs.
//!
//! # Examples
//!
//! ```
//! use dv_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = dv_tensor::matmul::matmul(&a, &b);
//! assert_eq!(c.data(), a.data());
//! ```

#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod conv;
pub mod gemm;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod gemm_simd;
pub mod io;
pub mod linalg;
pub mod matmul;
pub mod shape;
pub mod stats;
pub mod tensor;
pub mod view;
pub mod workspace;

pub use shape::Shape;
pub use tensor::Tensor;
pub use view::{TensorView, TensorViewMut};
pub use workspace::{SlotAllocator, Workspace};
