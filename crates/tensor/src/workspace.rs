//! Reusable scratch arena for allocation-free inference.
//!
//! A [`Workspace`] owns every buffer a forward pass needs — the two
//! ping-pong activation buffers, one buffer per tapped probe point, and a
//! set of per-op scratch slots (dense-block stage state; convolutions
//! need none since im2col is fused into the GEMM pack). Buffers are
//! growable `Vec<f32>`s that are *reused* across
//! calls: they allocate on first use (or growth) and are free from then
//! on, which is what makes the steady-state inference path
//! allocation-free.
//!
//! Slot ids are handed out at plan-build time by a [`SlotAllocator`], so
//! two ops never collide on a slot and a workspace can be shared by every
//! run through the same plan. A `Workspace` is cheap to create but holds
//! no thread-safety magic: each worker thread uses its own.

use std::mem;

/// Hands out workspace slot ids while an inference plan is being built.
#[derive(Debug, Default)]
pub struct SlotAllocator {
    next: usize,
}

impl SlotAllocator {
    /// Creates an allocator with no slots handed out.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the next free slot id.
    pub fn alloc(&mut self) -> usize {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Total number of slots handed out so far.
    pub fn count(&self) -> usize {
        self.next
    }
}

/// Owned, reusable scratch memory for one inference worker.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Ping-pong activation buffers the plan runner alternates between.
    acts: [Vec<f32>; 2],
    /// One buffer per tapped probe point (filled during a probed run).
    probes: Vec<Vec<f32>>,
    /// Indexed per-op scratch slots (ids from a [`SlotAllocator`]).
    slots: Vec<Vec<f32>>,
}

impl Workspace {
    /// Creates an empty workspace; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the activation buffers out, leaving empty ones behind.
    ///
    /// The plan runner takes them so it can hold `&mut` slices of the
    /// activations while still passing `&mut Workspace` (for slots) to
    /// each op. Pair with [`put_acts`](Workspace::put_acts).
    pub fn take_acts(&mut self) -> [Vec<f32>; 2] {
        [mem::take(&mut self.acts[0]), mem::take(&mut self.acts[1])]
    }

    /// Returns activation buffers taken by [`take_acts`](Workspace::take_acts),
    /// so their capacity is reused by the next run.
    pub fn put_acts(&mut self, acts: [Vec<f32>; 2]) {
        self.acts = acts;
    }

    /// Read-only contents of activation buffer `i` (after a run restored
    /// them with [`put_acts`](Workspace::put_acts)).
    pub fn act(&self, i: usize) -> &[f32] {
        &self.acts[i]
    }

    /// Ensures `n` probe buffers exist.
    pub fn ensure_probes(&mut self, n: usize) {
        if self.probes.len() < n {
            self.probes.resize_with(n, Vec::new);
        }
    }

    /// Mutable access to probe buffer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` was not reserved via [`ensure_probes`](Workspace::ensure_probes).
    pub fn probe_buf_mut(&mut self, i: usize) -> &mut Vec<f32> {
        &mut self.probes[i]
    }

    /// Read-only contents of probe buffer `i`.
    pub fn probe(&self, i: usize) -> &[f32] {
        &self.probes[i]
    }

    /// Ensures `n` scratch slots exist.
    pub fn ensure_slots(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize_with(n, Vec::new);
        }
    }

    /// Mutable access to scratch slot `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not reserved via [`ensure_slots`](Workspace::ensure_slots).
    pub fn slot_mut(&mut self, id: usize) -> &mut Vec<f32> {
        &mut self.slots[id]
    }

    /// Moves slot `id` out (for ops that need several slots live at once),
    /// leaving an empty buffer behind. Pair with [`put_slot`](Workspace::put_slot).
    pub fn take_slot(&mut self, id: usize) -> Vec<f32> {
        mem::take(&mut self.slots[id])
    }

    /// Returns a slot taken by [`take_slot`](Workspace::take_slot) so its
    /// capacity is reused.
    pub fn put_slot(&mut self, id: usize, buf: Vec<f32>) {
        self.slots[id] = buf;
    }

    /// Number of probe buffers currently reserved.
    pub fn num_probes(&self) -> usize {
        self.probes.len()
    }

    /// Pre-reserves capacity for both ping-pong activation buffers, so a
    /// batch-sized forward pass can run without a single growth
    /// reallocation mid-flight. `len` is the largest activation length
    /// (batch × widest layer item) the caller expects; sizing up front
    /// moves the allocation cost to setup instead of the first oversized
    /// request.
    pub fn reserve_acts(&mut self, len: usize) {
        for buf in &mut self.acts {
            if buf.capacity() < len {
                buf.reserve(len - buf.len());
            }
        }
    }

    /// Clears every buffer's *contents* while keeping its capacity: after
    /// a reset the workspace holds no activations, tapped probes, or
    /// per-op scratch from any earlier (possibly aborted mid-forward)
    /// run, yet the next run still allocates nothing. This is the
    /// recovery step a serving worker applies before reusing a workspace
    /// whose last request was unwound or abandoned.
    pub fn reset(&mut self) {
        for buf in &mut self.acts {
            buf.clear();
        }
        for buf in &mut self.probes {
            buf.clear();
        }
        for buf in &mut self.slots {
            buf.clear();
        }
    }
}

/// Resets `buf` to `len` zeroed elements, allocating only if the buffer
/// has never been this large before.
pub fn ensure_zeroed(buf: &mut Vec<f32>, len: usize) {
    buf.clear();
    buf.resize(len, 0.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_allocator_hands_out_sequential_ids() {
        let mut a = SlotAllocator::new();
        assert_eq!(a.alloc(), 0);
        assert_eq!(a.alloc(), 1);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn ensure_zeroed_reuses_capacity() {
        let mut buf = Vec::new();
        ensure_zeroed(&mut buf, 8);
        assert_eq!(buf.len(), 8);
        buf[3] = 7.0;
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        ensure_zeroed(&mut buf, 4);
        assert_eq!(buf, vec![0.0; 4]);
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_ptr(), ptr);
    }

    #[test]
    fn acts_round_trip_preserves_capacity() {
        let mut ws = Workspace::new();
        let mut acts = ws.take_acts();
        ensure_zeroed(&mut acts[0], 16);
        acts[0][0] = 2.0;
        ws.put_acts(acts);
        assert_eq!(ws.act(0)[0], 2.0);
        let again = ws.take_acts();
        assert!(again[0].capacity() >= 16);
    }

    #[test]
    fn reset_clears_contents_but_keeps_capacity() {
        let mut ws = Workspace::new();
        let mut acts = ws.take_acts();
        ensure_zeroed(&mut acts[0], 32);
        acts[0][5] = 3.0;
        ws.put_acts(acts);
        ws.ensure_probes(2);
        ensure_zeroed(ws.probe_buf_mut(1), 8);
        ws.probe_buf_mut(1)[0] = 1.0;
        ws.ensure_slots(1);
        ensure_zeroed(ws.slot_mut(0), 4);

        ws.reset();
        assert!(ws.act(0).is_empty());
        assert!(ws.probe(1).is_empty());
        assert_eq!(ws.num_probes(), 2);
        // Capacity survives: regrowing to the old size reuses the buffer.
        let probe = ws.probe_buf_mut(1);
        let cap = probe.capacity();
        assert!(cap >= 8);
        ensure_zeroed(probe, 8);
        assert_eq!(probe.capacity(), cap);
    }

    #[test]
    fn reserve_acts_presizes_both_ping_pong_buffers() {
        let mut ws = Workspace::new();
        ws.reserve_acts(64);
        let acts = ws.take_acts();
        assert!(acts[0].capacity() >= 64);
        assert!(acts[1].capacity() >= 64);
        ws.put_acts(acts);
        // Growing to the reserved size afterwards must not reallocate.
        let mut acts = ws.take_acts();
        let ptr = acts[0].as_ptr();
        ensure_zeroed(&mut acts[0], 64);
        assert_eq!(acts[0].as_ptr(), ptr);
        ws.put_acts(acts);
        // Shrinking the request is a no-op.
        ws.reserve_acts(8);
        assert!(ws.take_acts()[0].capacity() >= 64);
    }

    #[test]
    fn slots_and_probes_grow_on_demand() {
        let mut ws = Workspace::new();
        ws.ensure_slots(2);
        ensure_zeroed(ws.slot_mut(1), 3);
        ws.slot_mut(1)[2] = 9.0;
        let taken = ws.take_slot(1);
        assert_eq!(taken, vec![0.0, 0.0, 9.0]);
        ws.put_slot(1, taken);
        assert_eq!(ws.slot_mut(1)[2], 9.0);

        ws.ensure_probes(1);
        ensure_zeroed(ws.probe_buf_mut(0), 2);
        ws.probe_buf_mut(0)[0] = 4.0;
        assert_eq!(ws.probe(0), &[4.0, 0.0]);
    }
}
