//! Deterministic RNG stream splitting for parallel tasks.

/// Derives an independent RNG seed for task `stream` from `base`.
///
/// The mapping is a fixed bijective mix (splitmix64-style finalizers over
/// the pair), so the seed for a given `(base, stream)` never depends on
/// scheduling: seeding one RNG per task index yields bit-identical
/// randomized results at any thread count, including the sequential path.
/// Streams are decorrelated even for adjacent inputs, and
/// `split_seed(base, s) != base` in practice because the stream term is
/// offset before mixing.
#[must_use]
pub fn split_seed(base: u64, stream: u64) -> u64 {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut z = base ^ mix(stream.wrapping_add(1).wrapping_mul(GOLDEN));
    z = mix(z.wrapping_add(GOLDEN));
    mix(z)
}

/// splitmix64 finalizer: full-avalanche 64-bit mixing.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_is_deterministic() {
        assert_eq!(split_seed(42, 7), split_seed(42, 7));
    }

    #[test]
    fn split_seed_separates_streams_and_bases() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for stream in 0..64u64 {
                let s = split_seed(base, stream);
                assert_ne!(s, base, "stream {stream} echoed base {base}");
                assert!(seen.insert(s), "collision at base {base} stream {stream}");
            }
        }
    }
}
