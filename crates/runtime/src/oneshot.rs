//! One-shot promise/ticket pairs for request/response handoff.
//!
//! [`oneshot`] splits a single rendezvous into a [`Promise`] (held by the
//! worker that will produce the value) and a [`Ticket`] (held by the
//! caller that will wait for it). The crucial robustness property is
//! **no-hang on failure**: if the `Promise` is dropped without being
//! fulfilled — a worker panicked and unwound, a queue was torn down with
//! jobs still inside — the ticket observes [`Broken`] instead of waiting
//! forever. A served request therefore always reaches exactly one
//! terminal state: fulfilled once, or broken.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// The promise was dropped before [`Promise::fulfill`] was called.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Broken;

enum OnceState<T> {
    Pending,
    Ready(T),
    Broken,
}

struct OnceShared<T> {
    state: Mutex<OnceState<T>>,
    ready: Condvar,
}

/// The producing half: fulfill it exactly once, or drop it to break the
/// ticket.
pub struct Promise<T> {
    shared: Arc<OnceShared<T>>,
    fulfilled: bool,
}

/// The consuming half: wait for the value (or for proof none is coming).
pub struct Ticket<T> {
    shared: Arc<OnceShared<T>>,
}

/// Creates a connected promise/ticket pair.
pub fn oneshot<T>() -> (Promise<T>, Ticket<T>) {
    let shared = Arc::new(OnceShared {
        state: Mutex::new(OnceState::Pending),
        ready: Condvar::new(),
    });
    (
        Promise {
            shared: Arc::clone(&shared),
            fulfilled: false,
        },
        Ticket { shared },
    )
}

impl<T> Promise<T> {
    /// Delivers the value and wakes the waiting ticket.
    pub fn fulfill(mut self, value: T) {
        let mut state = self
            .shared
            .state
            .lock()
            .expect("oneshot lock poisoned: state transitions never panic while holding it");
        *state = OnceState::Ready(value);
        drop(state);
        self.fulfilled = true;
        self.shared.ready.notify_all();
    }
}

impl<T> Drop for Promise<T> {
    fn drop(&mut self) {
        if self.fulfilled {
            return;
        }
        let mut state = self
            .shared
            .state
            .lock()
            .expect("oneshot lock poisoned: state transitions never panic while holding it");
        if matches!(*state, OnceState::Pending) {
            *state = OnceState::Broken;
        }
        drop(state);
        self.shared.ready.notify_all();
    }
}

impl<T> Ticket<T> {
    /// Blocks until the value arrives or the promise is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`Broken`] when the promise was dropped unfulfilled.
    pub fn wait(self) -> Result<T, Broken> {
        let mut state = self
            .shared
            .state
            .lock()
            .expect("oneshot lock poisoned: state transitions never panic while holding it");
        loop {
            match std::mem::replace(&mut *state, OnceState::Pending) {
                OnceState::Ready(value) => return Ok(value),
                OnceState::Broken => return Err(Broken),
                OnceState::Pending => {
                    state = self
                        .shared
                        .ready
                        .wait(state)
                        .expect("oneshot lock poisoned while waiting for fulfillment");
                }
            }
        }
    }

    /// Waits up to `timeout`; on timeout the ticket comes back for a
    /// later retry, so a pending response is never silently abandoned.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` on timeout; `Ok(Err(Broken))` when the promise
    /// was dropped unfulfilled.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<T, Broken>, Self> {
        let deadline = std::time::Instant::now() + timeout; // dv-lint: allow(raw-timing, reason = "condvar wait_timeout needs a monotonic deadline anchor; never recorded")
        let mut state = self
            .shared
            .state
            .lock()
            .expect("oneshot lock poisoned: state transitions never panic while holding it");
        loop {
            match std::mem::replace(&mut *state, OnceState::Pending) {
                OnceState::Ready(value) => return Ok(Ok(value)),
                OnceState::Broken => return Ok(Err(Broken)),
                OnceState::Pending => {
                    // dv-lint: allow(raw-timing, reason = "remaining-time arithmetic for the timed condvar wait")
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        drop(state);
                        return Err(self);
                    }
                    let (guard, _) = self
                        .shared
                        .ready
                        .wait_timeout(state, deadline - now)
                        .expect("oneshot lock poisoned while waiting for fulfillment");
                    state = guard;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fulfilled_value_arrives() {
        let (p, t) = oneshot();
        p.fulfill(42u32);
        assert_eq!(t.wait(), Ok(42));
    }

    #[test]
    fn dropped_promise_breaks_ticket() {
        let (p, t) = oneshot::<u32>();
        drop(p);
        assert_eq!(t.wait(), Err(Broken));
    }

    #[test]
    fn wait_timeout_returns_ticket_then_value() {
        let (p, t) = oneshot();
        let t = match t.wait_timeout(Duration::from_millis(1)) {
            Err(t) => t,
            Ok(v) => panic!("nothing was fulfilled yet: {v:?}"),
        };
        p.fulfill(7u8);
        assert_eq!(t.wait(), Ok(7));
    }

    #[test]
    fn cross_thread_fulfillment() {
        let (p, t) = oneshot();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            p.fulfill("done");
        });
        assert_eq!(t.wait(), Ok("done"));
        h.join().expect("producer thread must not panic");
    }

    #[test]
    fn unwinding_producer_breaks_instead_of_hanging() {
        let (p, t) = oneshot::<u8>();
        let h = std::thread::spawn(move || {
            let _hold = p;
            panic!("worker crashed mid-request");
        });
        assert!(h.join().is_err());
        assert_eq!(t.wait(), Err(Broken));
    }
}
