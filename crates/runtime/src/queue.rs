//! A bounded MPMC queue with explicit backpressure.
//!
//! This is the submission queue behind the serving frontend: producers
//! use [`BoundedQueue::try_push`], which **fails fast** with
//! [`PushRejected::Full`] instead of blocking, so overload surfaces as a
//! typed rejection the caller can act on (shed, retry, degrade) rather
//! than as an invisible, unbounded backlog. Consumers block with a
//! timeout ([`BoundedQueue::pop_timeout`]) so worker loops can interleave
//! shutdown checks with popping.
//!
//! Closing is cooperative: [`BoundedQueue::close`] rejects new pushes
//! immediately but lets consumers drain what was already accepted;
//! [`Popped::Closed`] is only returned once the queue is both closed and
//! empty. This gives a server a natural drain-then-exit shutdown, while
//! [`BoundedQueue::try_pop`] lets a shedding shutdown claim leftovers
//! without racing consumers (each item has exactly one owner).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a [`BoundedQueue::try_push`] was rejected; the item comes back.
#[derive(Debug)]
pub enum PushRejected<T> {
    /// The queue is at capacity — backpressure; shed or retry later.
    Full(T),
    /// The queue was closed; no new work is accepted.
    Closed(T),
}

/// Result of a pop attempt.
#[derive(Debug)]
pub enum Popped<T> {
    /// An item was dequeued.
    Item(T),
    /// No item arrived within the timeout (queue still open).
    Empty,
    /// The queue is closed **and** drained; no item will ever arrive.
    Closed,
}

/// Result of a [`BoundedQueue::drain_up_to`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Drained {
    /// Items were appended to the caller's buffer.
    Items {
        /// How many items (≥ 1) were taken.
        taken: usize,
        /// Queue depth left behind *after* the take, measured under the
        /// same lock acquisition — a free, consistent gauge sample.
        depth: usize,
    },
    /// Nothing arrived within the timeout (queue still open).
    Empty,
    /// The queue is closed **and** drained; no item will ever arrive.
    Closed,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO queue.
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Whether [`close`](BoundedQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Enqueues `item` if there is room, without ever blocking. On
    /// success returns the queue depth *including* the new item,
    /// measured under the same lock acquisition — producers get a
    /// consistent gauge sample without any extra synchronisation.
    ///
    /// # Errors
    ///
    /// Returns the item back inside [`PushRejected::Full`] when at
    /// capacity and [`PushRejected::Closed`] after a close.
    pub fn try_push(&self, item: T) -> Result<usize, PushRejected<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushRejected::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushRejected::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Dequeues an item, waiting up to `timeout` for one to arrive.
    pub fn pop_timeout(&self, timeout: Duration) -> Popped<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Popped::Item(item);
            }
            if inner.closed {
                return Popped::Closed;
            }
            let (guard, wait) = self
                .not_empty
                .wait_timeout(inner, timeout)
                .expect("queue lock poisoned: queue operations never panic while holding it");
            inner = guard;
            if wait.timed_out() {
                // One last non-blocking check: an item may have been
                // pushed between the timeout firing and reacquisition.
                return match inner.items.pop_front() {
                    Some(item) => Popped::Item(item),
                    None if inner.closed => Popped::Closed,
                    None => Popped::Empty,
                };
            }
        }
    }

    /// Dequeues up to `max` items in FIFO order into `out`, waiting up
    /// to `timeout` only while the queue is empty. The wait covers the
    /// *first* item alone: once anything is in hand, whatever else is
    /// already queued (up to `max`) is taken in the same lock
    /// acquisition and the call returns immediately — this is the batch
    /// coalescing primitive for serving workers, which must never stall
    /// an in-hand request waiting for companions to arrive.
    ///
    /// Items are appended to `out` (which is not cleared) preserving
    /// queue order; `out[0]` is the oldest. Returns [`Drained::Empty`]
    /// on timeout with nothing taken and [`Drained::Closed`] only once
    /// the queue is both closed and fully drained, mirroring
    /// [`pop_timeout`](BoundedQueue::pop_timeout).
    pub fn drain_up_to(&self, max: usize, timeout: Duration, out: &mut Vec<T>) -> Drained {
        if max == 0 {
            return Drained::Empty;
        }
        let mut inner = self.lock();
        loop {
            if !inner.items.is_empty() {
                let take = inner.items.len().min(max);
                out.extend(inner.items.drain(..take));
                return Drained::Items {
                    taken: take,
                    depth: inner.items.len(),
                };
            }
            if inner.closed {
                return Drained::Closed;
            }
            let (guard, wait) = self
                .not_empty
                .wait_timeout(inner, timeout)
                .expect("queue lock poisoned: queue operations never panic while holding it");
            inner = guard;
            if wait.timed_out() {
                // One last non-blocking check, as in `pop_timeout`: items
                // may have arrived between the timeout and reacquisition.
                if !inner.items.is_empty() {
                    let take = inner.items.len().min(max);
                    out.extend(inner.items.drain(..take));
                    return Drained::Items {
                        taken: take,
                        depth: inner.items.len(),
                    };
                }
                return if inner.closed {
                    Drained::Closed
                } else {
                    Drained::Empty
                };
            }
        }
    }

    /// Dequeues an item if one is immediately available.
    pub fn try_pop(&self) -> Popped<T> {
        let mut inner = self.lock();
        match inner.items.pop_front() {
            Some(item) => Popped::Item(item),
            None if inner.closed => Popped::Closed,
            None => Popped::Empty,
        }
    }

    /// Closes the queue: pushes are rejected from now on, pops drain the
    /// remaining items and then observe [`Popped::Closed`]. Wakes every
    /// blocked consumer. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner<T>> {
        self.inner
            .lock()
            .expect("queue lock poisoned: queue operations never panic while holding it")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_push_backpressures_at_capacity() {
        let q = BoundedQueue::bounded(2);
        assert_eq!(q.try_push(1).ok(), Some(1), "depth includes the new item");
        assert_eq!(q.try_push(2).ok(), Some(2));
        match q.try_push(3) {
            Err(PushRejected::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn fifo_order_and_try_pop() {
        let q = BoundedQueue::bounded(4);
        q.try_push('a').expect("queue has room");
        q.try_push('b').expect("queue has room");
        assert!(matches!(q.try_pop(), Popped::Item('a')));
        assert!(matches!(q.try_pop(), Popped::Item('b')));
        assert!(matches!(q.try_pop(), Popped::Empty));
    }

    #[test]
    fn close_rejects_pushes_but_drains_pops() {
        let q = BoundedQueue::bounded(4);
        q.try_push(1).expect("queue has room");
        q.close();
        assert!(matches!(q.try_push(2), Err(PushRejected::Closed(2))));
        assert!(matches!(q.try_pop(), Popped::Item(1)));
        assert!(matches!(q.try_pop(), Popped::Closed));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Popped::Closed
        ));
    }

    #[test]
    fn pop_timeout_returns_empty_when_nothing_arrives() {
        let q: BoundedQueue<u8> = BoundedQueue::bounded(1);
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Popped::Empty
        ));
    }

    #[test]
    fn drain_up_to_preserves_fifo_order_and_caps_the_take() {
        let q = BoundedQueue::bounded(8);
        for i in 0..5 {
            q.try_push(i).expect("queue has room");
        }
        let mut out = Vec::new();
        assert_eq!(
            q.drain_up_to(3, Duration::from_millis(1), &mut out),
            Drained::Items { taken: 3, depth: 2 },
            "depth reports what the take left behind"
        );
        assert_eq!(out, vec![0, 1, 2]);
        // The buffer is appended to, not cleared, and the remainder keeps
        // its order.
        assert_eq!(
            q.drain_up_to(8, Duration::from_millis(1), &mut out),
            Drained::Items { taken: 2, depth: 0 }
        );
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drain_up_to_times_out_empty_without_blocking_past_deadline() {
        let q: BoundedQueue<u8> = BoundedQueue::bounded(4);
        let mut out = Vec::new();
        let t0 = std::time::Instant::now();
        assert_eq!(
            q.drain_up_to(4, Duration::from_millis(5), &mut out),
            Drained::Empty
        );
        assert!(out.is_empty());
        // Generous bound: the wait must be tied to the timeout, not to
        // item arrival (nothing ever arrives here).
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn drain_up_to_returns_as_soon_as_anything_is_available() {
        // One queued item must come back alone — the wait never extends
        // past first availability hoping for a fuller batch.
        let q = BoundedQueue::bounded(4);
        q.try_push(7).expect("queue has room");
        let mut out = Vec::new();
        assert_eq!(
            q.drain_up_to(4, Duration::from_secs(30), &mut out),
            Drained::Items { taken: 1, depth: 0 }
        );
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn drain_up_to_drains_then_reports_closed() {
        let q = BoundedQueue::bounded(4);
        q.try_push(1).expect("queue has room");
        q.try_push(2).expect("queue has room");
        q.close();
        let mut out = Vec::new();
        assert_eq!(
            q.drain_up_to(8, Duration::from_millis(1), &mut out),
            Drained::Items { taken: 2, depth: 0 }
        );
        assert_eq!(
            q.drain_up_to(8, Duration::from_millis(1), &mut out),
            Drained::Closed
        );
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn drain_up_to_zero_is_a_noop() {
        let q = BoundedQueue::bounded(2);
        q.try_push(1).expect("queue has room");
        let mut out = Vec::new();
        assert_eq!(
            q.drain_up_to(0, Duration::from_millis(1), &mut out),
            Drained::Empty
        );
        assert!(out.is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn close_wakes_blocked_drainer() {
        let q = std::sync::Arc::new(BoundedQueue::<u8>::bounded(1));
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || {
            let mut out = Vec::new();
            q2.drain_up_to(4, Duration::from_secs(30), &mut out)
        });
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        let got = h.join().expect("drainer thread must not panic");
        assert_eq!(got, Drained::Closed);
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q = std::sync::Arc::new(BoundedQueue::<u8>::bounded(1));
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(30)));
        // Give the consumer time to block, then close.
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        let got = h.join().expect("consumer thread must not panic");
        assert!(matches!(got, Popped::Closed));
    }
}
