//! `dv-runtime`: a dependency-free work-stealing thread pool powering every
//! compute-bound path in the Deep Validation workspace.
//!
//! # Design
//!
//! A [`Pool`] owns `threads - 1` worker threads; the thread that submits a
//! parallel job always participates as the extra worker, so `Pool::new(1)`
//! spawns nothing and runs every primitive on the exact sequential code
//! path. Work is an index range `0..n` split into one contiguous sub-range
//! per participant. Each participant claims chunks from the front of its
//! own range and, when empty, steals the back half of the largest remaining
//! victim range — contiguous ranges keep claims cache-friendly and make the
//! scheduling overhead a handful of mutex operations per chunk.
//!
//! # Determinism
//!
//! Scheduling is nondeterministic, but every primitive here guarantees that
//! each index is executed exactly once and that outputs land in
//! index-order slots. Kernels that keep their per-index accumulation order
//! fixed (as the workspace's gram/matmul/im2col kernels do) therefore
//! produce bit-identical results for any thread count. For randomized
//! per-task work, [`split_seed`] derives statistically independent,
//! schedule-independent RNG seeds from a base seed and a task index.
//!
//! # Panics
//!
//! A panic inside a parallel closure poisons the job: remaining chunks are
//! skipped, the first payload is captured, and it is re-raised on the
//! submitting thread once the job drains.
//!
//! # Configuration
//!
//! The [`global`] pool sizes itself from the `DV_THREADS` environment
//! variable, falling back to [`std::thread::available_parallelism`].
//! [`Pool::install`] scopes the free functions ([`par_for`], [`par_map`],
//! [`par_chunks_mut`]) to an explicit pool for tests and benchmarks.
//!
//! # Serving primitives
//!
//! Long-lived request serving needs different building blocks than
//! data-parallel batch jobs, and they all live here so the rest of the
//! workspace never touches raw threads or locks (dv-lint R2/R7):
//! [`BoundedQueue`] (backpressured MPMC submission queue), [`oneshot`]
//! (promise/ticket response handoff that breaks instead of hanging when
//! a producer dies), [`Crew`] (named pinned worker threads with crash
//! supervision and respawn), and [`HoldingPen`] (a crash-retry FIFO
//! that keeps drained-but-unserved jobs recoverable across a panic).

pub mod config;
mod crew;
mod oneshot;
mod pen;
mod pool;
mod queue;
mod rng;
mod stats;

pub use crew::Crew;
pub use oneshot::{oneshot, Broken, Promise, Ticket};
pub use pen::HoldingPen;
pub use pool::{current_threads, par_chunks_mut, par_for, par_map, Pool};
pub use queue::{BoundedQueue, Drained, Popped, PushRejected};
pub use rng::split_seed;
pub use stats::StatsSnapshot;

/// Returns the process-wide pool, created on first use.
///
/// Thread count comes from `DV_THREADS` (a positive integer) when set and
/// valid, otherwise [`std::thread::available_parallelism`].
pub fn global() -> &'static Pool {
    pool::global()
}

/// Parses a `DV_THREADS`-style value; `None` means "use the default".
pub fn parse_thread_env(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_thread_env_accepts_positive_integers() {
        assert_eq!(parse_thread_env(Some("4")), Some(4));
        assert_eq!(parse_thread_env(Some(" 2 ")), Some(2));
        assert_eq!(parse_thread_env(Some("0")), None);
        assert_eq!(parse_thread_env(Some("-3")), None);
        assert_eq!(parse_thread_env(Some("many")), None);
        assert_eq!(parse_thread_env(None), None);
    }
}
