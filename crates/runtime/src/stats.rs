//! Lightweight per-pool scheduling counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Internal atomic counters, updated by participants as jobs drain.
#[derive(Default)]
pub(crate) struct Stats {
    tasks: AtomicU64,
    steals: AtomicU64,
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
}

impl Stats {
    pub(crate) fn add_tasks(&self, n: u64) {
        self.tasks.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_busy(&self, d: Duration) {
        self.busy_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_idle(&self, d: Duration) {
        self.idle_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            tasks: self.tasks.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            idle_ns: self.idle_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a pool's cumulative counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Total indices executed across all jobs.
    pub tasks: u64,
    /// Successful steals (a participant took work from a victim's range).
    pub steals: u64,
    /// Nanoseconds participants spent inside jobs (claiming + executing).
    pub busy_ns: u64,
    /// Nanoseconds workers spent parked waiting for a job.
    pub idle_ns: u64,
}
