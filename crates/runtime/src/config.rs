//! The workspace's single home for environment-variable configuration.
//!
//! Scattered `std::env::var` calls undermine reproducibility: two
//! subsystems can read the same knob at different times (or spell it
//! differently) and disagree about the run's configuration. dv-lint R9
//! (`env-read`) therefore bans `std::env` reads everywhere *except this
//! file* — new knobs get a reader here, cached on first use so every
//! caller in the process sees one consistent value.
//!
//! Current knobs:
//!
//! | Variable          | Meaning                                         |
//! |-------------------|-------------------------------------------------|
//! | `DV_THREADS`      | Global pool size (positive integer)             |
//! | `DV_TRACE_SAMPLE` | Record every Nth request's spans (0/1 = all)    |

use std::sync::OnceLock;

/// `DV_THREADS`: requested global-pool thread count, or `None` to use
/// [`std::thread::available_parallelism`]. Read fresh (not cached) —
/// the global pool itself is the once-only consumer, and tests that
/// spawn scoped pools bypass the env entirely via `Pool::install`.
#[must_use]
pub fn requested_threads() -> Option<usize> {
    let env = std::env::var("DV_THREADS").ok();
    crate::parse_thread_env(env.as_deref())
}

/// `DV_TRACE_SAMPLE`: deterministic 1-in-N trace sampling period.
///
/// A server records the spans of every request whose sequence number is
/// divisible by this period (sequence-keyed, so the sampled set is
/// identical at any `DV_THREADS`). Unset, `0`, `1`, or unparsable all
/// mean "record every request". Cached on first read so one process
/// cannot observe two different periods.
#[must_use]
pub fn trace_sample_every() -> u64 {
    static PERIOD: OnceLock<u64> = OnceLock::new();
    *PERIOD.get_or_init(|| {
        std::env::var("DV_TRACE_SAMPLE")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_sample_defaults_to_every_request() {
        // The test environment does not set DV_TRACE_SAMPLE; the cached
        // default must be 1 (sample everything).
        assert_eq!(trace_sample_every(), 1);
        // Cached: a second read returns the same value.
        assert_eq!(trace_sample_every(), 1);
    }
}
