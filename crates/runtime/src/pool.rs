//! The work-stealing pool and its scoped parallel primitives.

use std::cell::{Cell, RefCell};
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
// dv-lint: allow(raw-timing, reason = "pool stats keep raw busy/idle durations that never leave the stats snapshot")
use std::time::Instant;

use crate::stats::{Stats, StatsSnapshot};

/// One participant's contiguous slice of the job's index space.
///
/// The owner claims chunks from the front (`next`), thieves take the back
/// half (`end`); both under the mutex, so no index runs twice.
struct Range {
    next: usize,
    end: usize,
}

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// A single `par_for` submission shared between the caller and workers.
struct Job {
    ranges: Vec<Mutex<Range>>,
    /// Indices claimed but not yet retired; 0 means every index ran.
    remaining: AtomicUsize,
    /// Set by the first panicking chunk; later chunks are skipped.
    poisoned: AtomicBool,
    panic: Mutex<Option<PanicPayload>>,
    done: Mutex<bool>,
    done_cv: Condvar,
    /// Borrow of the caller's closure with its lifetime erased. Sound to
    /// call because a chunk can only be claimed while `remaining > 0`,
    /// which holds the submitting `run` call (and thus the closure) on
    /// its stack until the chunk is retired.
    func: &'static (dyn Fn(usize) + Sync),
}

impl Job {
    fn new(n: usize, participants: usize, func: &'static (dyn Fn(usize) + Sync)) -> Self {
        // Split 0..n into one contiguous range per participant.
        let per = n / participants;
        let extra = n % participants;
        let mut ranges = Vec::with_capacity(participants);
        let mut start = 0usize;
        for slot in 0..participants {
            let len = per + usize::from(slot < extra);
            ranges.push(Mutex::new(Range {
                next: start,
                end: start + len,
            }));
            start += len;
        }
        debug_assert_eq!(start, n);
        Self {
            ranges,
            remaining: AtomicUsize::new(n),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            func,
        }
    }
}

struct PoolState {
    job: Option<Arc<Job>>,
    /// Bumped on both publish and clear so sleeping workers can tell a new
    /// job from the one they already drained.
    epoch: u64,
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    stats: Stats,
    /// Worker threads plus the submitting thread.
    participants: usize,
}

thread_local! {
    /// True while this thread is executing chunks of some job; nested
    /// parallel calls then run inline instead of deadlocking the pool.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Stack of pools scoped in by [`Pool::install`].
    static INSTALLED: RefCell<Vec<Arc<Shared>>> = const { RefCell::new(Vec::new()) };
}

/// A work-stealing thread pool. See the crate docs for the design.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool with `threads` participants (min 1). `threads - 1`
    /// worker threads are spawned; the submitting thread is the last
    /// participant, so `Pool::new(1)` spawns nothing and runs everything
    /// sequentially on the caller.
    pub fn new(threads: usize) -> Self {
        let participants = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
            }),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Stats::default(),
            participants,
        });
        let workers = (1..participants)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dv-runtime-{slot}"))
                    .spawn(move || worker_loop(&shared, slot))
                    .expect("spawn dv-runtime worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of participants (workers + the submitting thread).
    pub fn threads(&self) -> usize {
        self.shared.participants
    }

    /// Cumulative scheduling counters for this pool.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Runs `f` with this pool scoped in: the free functions [`par_for`],
    /// [`par_map`] and [`par_chunks_mut`] use it instead of the global
    /// pool for the duration of the call.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED.with(|s| s.borrow_mut().push(Arc::clone(&self.shared)));
        // Pop on unwind too, so a panicking scope does not leak the pool.
        struct Guard;
        impl Drop for Guard {
            fn drop(&mut self) {
                INSTALLED.with(|s| {
                    s.borrow_mut().pop();
                });
            }
        }
        let _guard = Guard;
        f()
    }

    /// Calls `f(i)` for every `i in 0..n`, each exactly once, in parallel.
    pub fn par_for<F: Fn(usize) + Sync>(&self, n: usize, f: F) {
        par_for_in(&self.shared, n, &f);
    }

    /// Maps `f` over `items` in parallel; output order matches input order.
    pub fn par_map<T: Sync, U: Send, F: Fn(&T) -> U + Sync>(&self, items: &[T], f: F) -> Vec<U> {
        par_map_in(&self.shared, items, &f)
    }

    /// Splits `data` into consecutive chunks of `chunk` elements (the last
    /// may be shorter) and calls `f(chunk_index, chunk)` in parallel.
    pub fn par_chunks_mut<T: Send, F: Fn(usize, &mut [T]) + Sync>(
        &self,
        data: &mut [T],
        chunk: usize,
        f: F,
    ) {
        par_chunks_mut_in(&self.shared, data, chunk, &f);
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Take the lock so no worker can be between the shutdown check and
        // the condvar wait when we notify.
        drop(
            self.shared
                .state
                .lock()
                .expect("pool state lock poisoned at shutdown: a pool-internal panic escaped"),
        );
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// See [`crate::global`].
pub(crate) fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| {
        let threads = crate::config::requested_threads()
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Pool::new(threads)
    })
}

fn with_current<R>(f: impl FnOnce(&Arc<Shared>) -> R) -> R {
    let installed = INSTALLED.with(|s| s.borrow().last().cloned());
    match installed {
        Some(shared) => f(&shared),
        None => f(&global().shared),
    }
}

/// Thread count of the currently scoped pool (installed or global).
pub fn current_threads() -> usize {
    with_current(|s| s.participants)
}

/// [`Pool::par_for`] on the currently scoped pool.
pub fn par_for<F: Fn(usize) + Sync>(n: usize, f: F) {
    with_current(|s| par_for_in(s, n, &f));
}

/// [`Pool::par_map`] on the currently scoped pool.
pub fn par_map<T: Sync, U: Send, F: Fn(&T) -> U + Sync>(items: &[T], f: F) -> Vec<U> {
    with_current(|s| par_map_in(s, items, &f))
}

/// [`Pool::par_chunks_mut`] on the currently scoped pool.
pub fn par_chunks_mut<T: Send, F: Fn(usize, &mut [T]) + Sync>(data: &mut [T], chunk: usize, f: F) {
    with_current(|s| par_chunks_mut_in(s, data, chunk, &f));
}

fn par_for_in(shared: &Arc<Shared>, n: usize, f: &(dyn Fn(usize) + Sync)) {
    if shared.participants <= 1 || n <= 1 || IN_WORKER.get() {
        for i in 0..n {
            f(i);
        }
        return;
    }
    run(shared, n, f);
}

fn par_map_in<T: Sync, U: Send>(
    shared: &Arc<Shared>,
    items: &[T],
    f: &(dyn Fn(&T) -> U + Sync),
) -> Vec<U> {
    let n = items.len();
    if shared.participants <= 1 || n <= 1 || IN_WORKER.get() {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<MaybeUninit<U>> = (0..n).map(|_| MaybeUninit::uninit()).collect();
    let slots = SendPtr(out.as_mut_ptr());
    run(shared, n, &|i| {
        let value = f(&items[i]);
        // SAFETY: each index is executed exactly once, so each slot is
        // written exactly once, and slots are disjoint.
        unsafe { (*slots.get().add(i)).write(value) };
    });
    // SAFETY: `run` returned without panicking, so all n slots were
    // written; retiring chunks synchronizes-with the job-done handshake.
    unsafe {
        let ptr = out.as_mut_ptr() as *mut U;
        let cap = out.capacity();
        std::mem::forget(out);
        Vec::from_raw_parts(ptr, n, cap)
    }
}

fn par_chunks_mut_in<T: Send>(
    shared: &Arc<Shared>,
    data: &mut [T],
    chunk: usize,
    f: &(dyn Fn(usize, &mut [T]) + Sync),
) {
    assert!(chunk > 0, "chunk size must be positive");
    let total = data.len();
    if total == 0 {
        return;
    }
    let nchunks = total.div_ceil(chunk);
    let base = SendPtr(data.as_mut_ptr());
    par_for_in(shared, nchunks, &|ci| {
        let start = ci * chunk;
        let len = chunk.min(total - start);
        // SAFETY: chunks are disjoint sub-slices of `data`, one per index,
        // and `data` is exclusively borrowed for the whole call.
        let slice = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), len) };
        f(ci, slice);
    });
}

/// A raw pointer that may cross threads; all uses are disjoint-by-index.
/// Accessed only through [`SendPtr::get`] so closures capture the wrapper
/// (which is `Sync`), not the raw pointer field (which is not).
struct SendPtr<T>(*mut T);
// SAFETY: the wrapper only ever hands the pointer to per-index closures
// whose index sets are disjoint, so moving it across threads cannot create
// two writers to the same location.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: shared references to SendPtr expose only `get`, and every caller
// derives disjoint-by-index addresses from it; no `&SendPtr` access aliases
// another thread's writes.
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Submits a job, participates until the index space drains, waits for
/// stragglers, then re-raises any captured panic.
fn run(shared: &Arc<Shared>, n: usize, f: &(dyn Fn(usize) + Sync)) {
    dv_trace::span!("runtime.run");
    let job = {
        let mut state = shared.state.lock().expect(
            "pool state lock poisoned: chunk panics are caught, so the pool itself panicked",
        );
        if state.job.is_some() {
            // Another thread is already driving this pool; run inline
            // rather than queueing (callers stay latency-predictable).
            drop(state);
            for i in 0..n {
                f(i);
            }
            return;
        }
        // SAFETY: lifetime erasure only — `Job.func` documents why the
        // borrow outlives every dereference.
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let job = Arc::new(Job::new(n, shared.participants, f_static));
        state.job = Some(Arc::clone(&job));
        state.epoch = state.epoch.wrapping_add(1);
        job
    };
    shared.work_cv.notify_all();

    participate(shared, &job, 0);

    let mut done = job
        .done
        .lock()
        .expect("job done lock poisoned: the done flag is only toggled, never panics");
    while !*done {
        done = job
            .done_cv
            .wait(done)
            .expect("job done lock poisoned while waiting for stragglers");
    }
    drop(done);

    {
        let mut state = shared.state.lock().expect(
            "pool state lock poisoned: chunk panics are caught, so the pool itself panicked",
        );
        state.job = None;
        state.epoch = state.epoch.wrapping_add(1);
    }

    let payload = job
        .panic
        .lock()
        .expect("panic slot lock poisoned: the slot only stores the first payload")
        .take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

fn worker_loop(shared: &Arc<Shared>, slot: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect(
                "pool state lock poisoned: chunk panics are caught, so the pool itself panicked",
            );
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    if let Some(job) = state.job.clone() {
                        break job;
                    }
                    // Epoch moved because a job was cleared; keep waiting.
                }
                let idle_from = Instant::now(); // dv-lint: allow(raw-timing, reason = "feeds the pool's own idle-time stats counter, not a trace metric")
                let idle_ns = if dv_trace::tracing_enabled() {
                    dv_trace::now_ns()
                } else {
                    0
                };
                state = shared
                    .work_cv
                    .wait(state)
                    .expect("pool state lock poisoned while a worker slept");
                shared.stats.add_idle(idle_from.elapsed());
                if dv_trace::tracing_enabled() {
                    dv_trace::record_raw("runtime.idle", idle_ns, dv_trace::now_ns());
                }
            }
        };
        participate(shared, &job, slot);
    }
}

/// Executes chunks of `job` on the current thread until none can be
/// claimed or stolen.
fn participate(shared: &Shared, job: &Job, slot: usize) {
    dv_trace::span!("runtime.participate");
    let was_worker = IN_WORKER.replace(true);
    let busy_from = Instant::now(); // dv-lint: allow(raw-timing, reason = "feeds the pool's own busy-time stats counter, not a trace metric")
    let mut executed = 0u64;

    loop {
        let chunk = claim_front(&job.ranges[slot]).or_else(|| steal(shared, job, slot));
        let Some((start, end)) = chunk else { break };
        let len = end - start;

        if !job.poisoned.load(Ordering::Relaxed) {
            // A claimed chunk implies `remaining > 0`, so the submitting
            // thread is still inside `run` and the closure behind `func`
            // is alive until this chunk is retired below.
            let func = job.func;
            let result = catch_unwind(AssertUnwindSafe(|| {
                for i in start..end {
                    if job.poisoned.load(Ordering::Relaxed) {
                        break;
                    }
                    func(i);
                }
            }));
            if let Err(payload) = result {
                job.poisoned.store(true, Ordering::Relaxed);
                let mut first = job
                    .panic
                    .lock()
                    .expect("panic slot lock poisoned: the slot only stores the first payload");
                if first.is_none() {
                    *first = Some(payload);
                }
            }
        }

        executed += len as u64;
        // AcqRel: the final decrement acquires every earlier participant's
        // writes before the done handshake publishes them to the caller.
        if job.remaining.fetch_sub(len, Ordering::AcqRel) == len {
            let mut done = job
                .done
                .lock()
                .expect("job done lock poisoned: the done flag is only toggled, never panics");
            *done = true;
            job.done_cv.notify_all();
        }
    }

    shared.stats.add_busy(busy_from.elapsed());
    shared.stats.add_tasks(executed);
    IN_WORKER.set(was_worker);
}

/// Claims a chunk from the front of `range`: a quarter of what is left,
/// min 1 — large early chunks amortize locking, small late ones balance.
fn claim_front(range: &Mutex<Range>) -> Option<(usize, usize)> {
    let mut r = range
        .lock()
        .expect("range lock poisoned: range arithmetic cannot panic while held");
    let len = r.end.saturating_sub(r.next);
    if len == 0 {
        return None;
    }
    let take = (len / 4).max(1);
    let start = r.next;
    r.next += take;
    Some((start, start + take))
}

/// Steals the back half of the largest victim range into this slot's own
/// (empty) range, then claims from it.
fn steal(shared: &Shared, job: &Job, slot: usize) -> Option<(usize, usize)> {
    loop {
        let mut best: Option<(usize, usize)> = None; // (victim, len)
        for (victim, range) in job.ranges.iter().enumerate() {
            if victim == slot {
                continue;
            }
            let r = range
                .lock()
                .expect("range lock poisoned: range arithmetic cannot panic while held");
            let len = r.end.saturating_sub(r.next);
            if len > 0 && best.is_none_or(|(_, blen)| len > blen) {
                best = Some((victim, len));
            }
        }
        let (victim, _) = best?;
        let stolen = {
            let mut r = job.ranges[victim]
                .lock()
                .expect("victim range lock poisoned: range arithmetic cannot panic while held");
            let len = r.end.saturating_sub(r.next);
            if len == 0 {
                continue; // lost the race; rescan
            }
            let take = len.div_ceil(2);
            r.end -= take;
            (r.end, r.end + take)
        };
        shared.stats.add_steal();
        {
            let mut own = job.ranges[slot]
                .lock()
                .expect("own range lock poisoned: range arithmetic cannot panic while held");
            debug_assert!(own.next >= own.end, "stealing with local work left");
            own.next = stolen.0;
            own.end = stolen.1;
        }
        return claim_front(&job.ranges[slot]);
    }
}
