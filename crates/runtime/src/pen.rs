//! Crash-retry holding pen: a small locked FIFO that keeps in-flight
//! jobs recoverable across a worker panic.
//!
//! dv-serve workers park everything they drain here *before* scoring
//! anything, so a panic anywhere in a wakeup — mid-batch or mid-single —
//! leaves every not-yet-fulfilled promise inside the pen for the
//! respawned incarnation to pop and retry. Like [`BoundedQueue`] and
//! [`oneshot`], the lock lives in `crates/runtime` (dv-lint R2) and the
//! API never exposes its guard: each method holds the lock only for its
//! own duration, so a caller *cannot* hold the pen across scoring.
//!
//! [`BoundedQueue`]: crate::BoundedQueue
//! [`oneshot`]: crate::oneshot

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// A FIFO pen of parked items behind one lock.
///
/// Poison-tolerant by design: the pen exists to survive panics, so an
/// unwind through [`for_front`](HoldingPen::for_front)'s visitor (the
/// only place caller code runs under the lock) must not wedge every
/// later pop into a poison cascade — that would strand the very
/// promises the pen protects. `VecDeque` operations leave the deque
/// valid when they unwind, so recovering the poisoned guard is sound.
pub struct HoldingPen<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> HoldingPen<T> {
    /// An empty pen.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Parks every item behind anything already penned, preserving the
    /// iterator's order.
    pub fn park(&self, items: impl IntoIterator<Item = T>) {
        self.lock().extend(items);
    }

    /// Removes and returns the oldest parked item.
    pub fn pop_front(&self) -> Option<T> {
        self.lock().pop_front()
    }

    /// Visits the first `n` parked items (fewer when the pen is
    /// shorter) in FIFO order without removing them.
    pub fn for_front(&self, n: usize, mut f: impl FnMut(&T)) {
        for item in self.lock().iter().take(n) {
            f(item);
        }
    }

    /// Visits the first `n` parked items mutably (fewer when the pen is
    /// shorter) in FIFO order without removing them. Lets dv-serve stamp
    /// lifecycle bookkeeping onto penned jobs in place, keeping the
    /// pen's crash-recoverability: the item never leaves the lock.
    pub fn for_front_mut(&self, n: usize, mut f: impl FnMut(&mut T)) {
        for item in self.lock().iter_mut().take(n) {
            f(item);
        }
    }

    /// Removes and returns the first `n` parked items (fewer when the
    /// pen is shorter) in FIFO order.
    #[must_use]
    pub fn release_front(&self, n: usize) -> Vec<T> {
        let mut inner = self.lock();
        let n = n.min(inner.len());
        inner.drain(..n).collect()
    }

    /// Number of parked items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing is parked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

impl<T> Default for HoldingPen<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn park_and_pop_preserve_fifo_order() {
        let pen = HoldingPen::new();
        pen.park([1, 2]);
        pen.park(std::iter::once(3));
        assert_eq!(pen.len(), 3);
        assert_eq!(pen.pop_front(), Some(1));
        assert_eq!(pen.pop_front(), Some(2));
        assert_eq!(pen.pop_front(), Some(3));
        assert_eq!(pen.pop_front(), None);
        assert!(pen.is_empty());
    }

    #[test]
    fn for_front_peeks_without_removing() {
        let pen = HoldingPen::new();
        pen.park([10, 20, 30]);
        let mut seen = Vec::new();
        pen.for_front(2, |&v| seen.push(v));
        assert_eq!(seen, vec![10, 20]);
        assert_eq!(pen.len(), 3, "peeking must not consume");
        seen.clear();
        pen.for_front(99, |&v| seen.push(v));
        assert_eq!(seen, vec![10, 20, 30], "n past the end visits all");
    }

    #[test]
    fn for_front_mut_updates_in_place_without_removing() {
        let pen = HoldingPen::new();
        pen.park([10, 20, 30]);
        pen.for_front_mut(2, |v| *v += 1);
        assert_eq!(pen.len(), 3, "mutable peek must not consume");
        assert_eq!(pen.release_front(3), vec![11, 21, 30]);
    }

    #[test]
    fn release_front_takes_exactly_the_prefix() {
        let pen = HoldingPen::new();
        pen.park([1, 2, 3, 4]);
        assert_eq!(pen.release_front(2), vec![1, 2]);
        assert_eq!(pen.len(), 2);
        assert_eq!(pen.release_front(99), vec![3, 4], "over-ask drains all");
        assert!(pen.release_front(1).is_empty());
    }

    #[test]
    fn pen_survives_a_panic_inside_the_visitor() {
        let pen = HoldingPen::new();
        pen.park([1, 2, 3]);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pen.for_front(3, |&v| {
                if v == 2 {
                    panic!("injected visitor panic");
                }
            });
        }))
        .is_err();
        assert!(unwound);
        // The whole point: a poisoned guard must not strand the jobs.
        assert_eq!(pen.pop_front(), Some(1));
        assert_eq!(pen.release_front(2), vec![2, 3]);
    }
}
