//! Supervised pinned worker threads with crash respawn.
//!
//! A [`Crew`] owns a fixed set of named, long-lived threads ("pinned
//! workers": one body closure per slot, re-invoked with the same slot
//! index on every spawn). Unlike the work-stealing [`Pool`](crate::Pool),
//! which multiplexes short chunks of a data-parallel job, a crew member
//! runs one long request loop — and the crew's job is to notice when a
//! member died (its body returned after catching a crash, or unwound
//! outright) and put a fresh thread in its slot.
//!
//! Supervision is pull-based: [`Crew::supervise`] reaps finished threads
//! and respawns them unless the crew was [`stop`](Crew::stop)ped. Callers
//! typically run it from a small monitor loop (itself a one-member crew),
//! which keeps every thread in the process spawned through this crate.
//!
//! The body closure is shared (`Fn`), so per-incarnation state — scratch
//! workspaces, warm caches — belongs *inside* the body, rebuilt on entry;
//! that is exactly what makes a respawn restore a clean worker.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

struct CrewShared {
    name: String,
    body: Box<dyn Fn(usize) + Send + Sync>,
    slots: Mutex<Vec<Option<JoinHandle<()>>>>,
    stopping: AtomicBool,
    respawns: AtomicU64,
}

/// A fixed-size set of supervised worker threads. Cheap to clone (the
/// clone shares the same crew).
#[derive(Clone)]
pub struct Crew {
    shared: Arc<CrewShared>,
}

impl Crew {
    /// Spawns `n` threads named `{name}-{slot}`, each running
    /// `body(slot)`. The body should loop until its work source reports
    /// shutdown, then return.
    pub fn spawn(name: &str, n: usize, body: impl Fn(usize) + Send + Sync + 'static) -> Self {
        let shared = Arc::new(CrewShared {
            name: name.to_string(),
            body: Box::new(body),
            slots: Mutex::new(Vec::with_capacity(n)),
            stopping: AtomicBool::new(false),
            respawns: AtomicU64::new(0),
        });
        {
            let mut slots = lock_slots(&shared);
            for slot in 0..n {
                slots.push(Some(spawn_member(&shared, slot)));
            }
        }
        Self { shared }
    }

    /// Reaps finished members and respawns each vacated slot (unless the
    /// crew is stopping). Returns how many members were respawned.
    pub fn supervise(&self) -> usize {
        let mut respawned = 0;
        let mut slots = lock_slots(&self.shared);
        for slot in 0..slots.len() {
            let finished = slots[slot]
                .as_ref()
                .is_none_or(std::thread::JoinHandle::is_finished);
            if !finished {
                continue;
            }
            if let Some(handle) = slots[slot].take() {
                // A body that unwound still needs its thread joined; the
                // crash itself was already handled (or is being handled)
                // by whoever owns the request the member was serving.
                let _ = handle.join();
            }
            if !self.shared.stopping.load(Ordering::SeqCst) {
                slots[slot] = Some(spawn_member(&self.shared, slot));
                self.shared.respawns.fetch_add(1, Ordering::SeqCst);
                respawned += 1;
            }
        }
        respawned
    }

    /// Number of members currently running.
    pub fn alive(&self) -> usize {
        lock_slots(&self.shared)
            .iter()
            .filter(|h| h.as_ref().is_some_and(|h| !h.is_finished()))
            .count()
    }

    /// Cumulative respawn count.
    pub fn respawns(&self) -> u64 {
        self.shared.respawns.load(Ordering::SeqCst)
    }

    /// Stops supervision: finished members are no longer respawned.
    /// Does not interrupt running bodies — make their work source report
    /// shutdown, then [`join`](Crew::join).
    pub fn stop(&self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
    }

    /// Joins every member. Call after [`stop`](Crew::stop) once bodies
    /// have a reason to return, or this blocks until they do.
    pub fn join(&self) {
        let handles: Vec<JoinHandle<()>> = {
            let mut slots = lock_slots(&self.shared);
            slots.iter_mut().filter_map(Option::take).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn lock_slots(shared: &Arc<CrewShared>) -> std::sync::MutexGuard<'_, Vec<Option<JoinHandle<()>>>> {
    shared
        .slots
        .lock()
        .expect("crew slot table poisoned: slot bookkeeping never panics while holding the lock")
}

fn spawn_member(shared: &Arc<CrewShared>, slot: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("{}-{slot}", shared.name))
        .spawn(move || (shared.body)(slot))
        .expect("spawn crew member thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn members_run_with_their_slot_index() {
        let seen = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        let seen2 = Arc::clone(&seen);
        let crew = Crew::spawn("t-crew", 2, move |slot| {
            seen2[slot].fetch_add(1, Ordering::SeqCst);
        });
        // Bodies return immediately; wait for both to finish.
        while crew.alive() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        crew.stop();
        crew.join();
        assert_eq!(seen[0].load(Ordering::SeqCst), 1);
        assert_eq!(seen[1].load(Ordering::SeqCst), 1);
    }

    #[test]
    fn supervise_respawns_finished_members() {
        let runs = Arc::new(AtomicUsize::new(0));
        let runs2 = Arc::clone(&runs);
        let crew = Crew::spawn("t-respawn", 1, move |_slot| {
            runs2.fetch_add(1, Ordering::SeqCst);
        });
        while crew.alive() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(crew.supervise(), 1);
        assert_eq!(crew.respawns(), 1);
        while crew.alive() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(runs.load(Ordering::SeqCst) >= 2);
        crew.stop();
        crew.join();
    }

    #[test]
    fn panicking_member_is_reaped_and_respawned() {
        let runs = Arc::new(AtomicUsize::new(0));
        let runs2 = Arc::clone(&runs);
        let crew = Crew::spawn("t-panic", 1, move |_slot| {
            if runs2.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("injected crew-member crash");
            }
        });
        while crew.alive() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(crew.supervise(), 1);
        while crew.alive() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(runs.load(Ordering::SeqCst), 2);
        crew.stop();
        crew.join();
    }

    #[test]
    fn stopped_crew_never_respawns() {
        let crew = Crew::spawn("t-stop", 1, |_slot| {});
        while crew.alive() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        crew.stop();
        assert_eq!(crew.supervise(), 0);
        assert_eq!(crew.respawns(), 0);
        crew.join();
    }
}
