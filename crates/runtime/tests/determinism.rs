//! Satellite tests: dv-runtime primitives are deterministic, order-preserving
//! and panic-propagating regardless of thread count.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use dv_runtime::{split_seed, Pool};

/// Tiny local splitmix64 so tests do not depend on the workspace RNG.
fn seq_rng(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed;
    move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[test]
fn par_map_preserves_input_order() {
    let pool = Pool::new(4);
    let items: Vec<usize> = (0..1000).collect();
    let mapped = pool.par_map(&items, |&x| x * 3 + 1);
    let expected: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
    assert_eq!(mapped, expected);
}

#[test]
fn par_for_runs_every_index_exactly_once() {
    let pool = Pool::new(4);
    let counts: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
    pool.par_for(counts.len(), |i| {
        counts[i].fetch_add(1, Ordering::Relaxed);
    });
    for (i, c) in counts.iter().enumerate() {
        assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
    }
}

#[test]
fn par_chunks_mut_covers_all_chunks() {
    let pool = Pool::new(3);
    let mut data = vec![0u32; 101];
    pool.par_chunks_mut(&mut data, 7, |ci, chunk| {
        for v in chunk.iter_mut() {
            *v = ci as u32 + 1;
        }
    });
    for (i, &v) in data.iter().enumerate() {
        assert_eq!(v, (i / 7) as u32 + 1, "element {i}");
    }
}

#[test]
fn par_map_propagates_panics() {
    let pool = Pool::new(4);
    let items: Vec<usize> = (0..64).collect();
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.par_map(&items, |&x| {
            assert!(x != 17, "boom at {x}");
            x
        })
    }));
    let payload = result.expect_err("panic must propagate to the caller");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("boom at 17"), "unexpected payload: {msg}");

    // The pool must stay usable after a poisoned job.
    let ok = pool.par_map(&items, |&x| x + 1);
    assert_eq!(ok[63], 64);
}

#[test]
fn rng_splitting_reproduces_sequential_stream() {
    // Each task draws from an RNG seeded by split_seed(base, task): the
    // parallel result must be bit-identical to the sequential loop.
    const BASE: u64 = 0xDEAD_BEEF_CAFE_F00D;
    let sequential: Vec<u64> = (0..512)
        .map(|task| {
            let mut draw = seq_rng(split_seed(BASE, task));
            (0..8).map(|_| draw()).fold(0u64, u64::wrapping_add)
        })
        .collect();

    for threads in [1, 2, 4, 8] {
        let pool = Pool::new(threads);
        let tasks: Vec<u64> = (0..512).collect();
        let parallel = pool.par_map(&tasks, |&task| {
            let mut draw = seq_rng(split_seed(BASE, task));
            (0..8).map(|_| draw()).fold(0u64, u64::wrapping_add)
        });
        assert_eq!(parallel, sequential, "threads={threads}");
    }
}

#[test]
fn single_thread_pool_runs_on_caller_thread() {
    let pool = Pool::new(1);
    assert_eq!(pool.threads(), 1);
    let caller = std::thread::current().id();
    pool.par_for(100, |_| {
        assert_eq!(std::thread::current().id(), caller);
    });
    assert_eq!(pool.stats().steals, 0);
}

#[test]
fn nested_parallelism_falls_back_inline() {
    let pool = Pool::new(4);
    let outer: Vec<usize> = (0..16).collect();
    let sums = pool.par_map(&outer, |&o| {
        let inner: Vec<usize> = (0..32).map(|i| i + o).collect();
        // Nested call: must complete (inline) rather than deadlock.
        pool.par_map(&inner, |&x| x * 2).iter().sum::<usize>()
    });
    for (o, s) in sums.iter().enumerate() {
        let expect: usize = (0..32).map(|i| (i + o) * 2).sum();
        assert_eq!(*s, expect);
    }
}

#[test]
fn install_scopes_free_functions() {
    let one = Pool::new(1);
    let four = Pool::new(4);
    assert_eq!(one.install(dv_runtime::current_threads), 1);
    assert_eq!(four.install(dv_runtime::current_threads), 4);
    // Nested installs: innermost wins, outer restored after.
    four.install(|| {
        assert_eq!(dv_runtime::current_threads(), 4);
        one.install(|| assert_eq!(dv_runtime::current_threads(), 1));
        assert_eq!(dv_runtime::current_threads(), 4);
    });

    let items: Vec<u64> = (0..300).collect();
    let a = one.install(|| dv_runtime::par_map(&items, |&x| x.wrapping_mul(x)));
    let b = four.install(|| dv_runtime::par_map(&items, |&x| x.wrapping_mul(x)));
    assert_eq!(a, b);
}

#[test]
fn stats_count_executed_tasks() {
    let pool = Pool::new(4);
    pool.par_for(1024, |_| {});
    pool.par_for(512, |_| {});
    let stats = pool.stats();
    assert_eq!(stats.tasks, 1536);
}
