//! Lock-free serving metrics: counters plus a log-linear latency
//! histogram. Everything is `AtomicU64` with `SeqCst` ordering so the
//! serving hot path never takes a lock and a snapshot can be read from
//! any thread.

use std::sync::atomic::{AtomicU64, Ordering};

const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
const BUCKETS: usize = 256;

/// Log-linear histogram over `u64` microsecond values: 8 sub-buckets per
/// power-of-two octave (≤ 12.5% relative error), 256 buckets covering
/// the full `u64` range.
pub(crate) struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
}

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as usize;
    ((octave + 1) * SUB as usize + sub).min(BUCKETS - 1)
}

fn bucket_floor(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let octave = idx / SUB as usize - 1;
    let sub = (idx % SUB as usize) as u64;
    (SUB + sub) << octave
}

impl LatencyHistogram {
    pub(crate) fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::SeqCst);
        self.count.fetch_add(1, Ordering::SeqCst);
    }

    /// Approximate quantile (`q` in `[0, 1]`): the midpoint of the bucket
    /// holding the `ceil(q * count)`-th smallest recorded value, or 0
    /// when nothing was recorded.
    pub(crate) fn quantile(&self, q: f64) -> u64 {
        let count = self.count.load(Ordering::SeqCst);
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for idx in 0..BUCKETS {
            seen += self.buckets[idx].load(Ordering::SeqCst);
            if seen >= target {
                let lo = bucket_floor(idx);
                let hi = if idx + 1 < BUCKETS {
                    bucket_floor(idx + 1)
                } else {
                    lo
                };
                return lo + (hi - lo) / 2;
            }
        }
        bucket_floor(BUCKETS - 1)
    }
}

/// Internal counter block shared by the server and its workers.
pub(crate) struct Metrics {
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected_queue_full: AtomicU64,
    pub(crate) rejected_shutdown: AtomicU64,
    pub(crate) served_full: AtomicU64,
    pub(crate) served_reduced: AtomicU64,
    pub(crate) served_confidence: AtomicU64,
    pub(crate) expired: AtomicU64,
    pub(crate) bad_input: AtomicU64,
    pub(crate) worker_crashes: AtomicU64,
    pub(crate) shed_shutdown: AtomicU64,
    pub(crate) deadline_missed: AtomicU64,
    pub(crate) recovery_count: AtomicU64,
    pub(crate) recovery_total_us: AtomicU64,
    pub(crate) recovery_max_us: AtomicU64,
    pub(crate) latency: LatencyHistogram,
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Self {
            submitted: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            served_full: AtomicU64::new(0),
            served_reduced: AtomicU64::new(0),
            served_confidence: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            bad_input: AtomicU64::new(0),
            worker_crashes: AtomicU64::new(0),
            shed_shutdown: AtomicU64::new(0),
            deadline_missed: AtomicU64::new(0),
            recovery_count: AtomicU64::new(0),
            recovery_total_us: AtomicU64::new(0),
            recovery_max_us: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }

    /// Records a crash-to-recovered interval (worker respawned, warmed,
    /// and back on the queue).
    pub(crate) fn record_recovery(&self, us: u64) {
        self.recovery_count.fetch_add(1, Ordering::SeqCst);
        self.recovery_total_us.fetch_add(us, Ordering::SeqCst);
        self.recovery_max_us.fetch_max(us, Ordering::SeqCst);
    }

    pub(crate) fn snapshot(&self, worker_respawns: u64) -> MetricsSnapshot {
        let recovery_count = self.recovery_count.load(Ordering::SeqCst);
        let recovery_total = self.recovery_total_us.load(Ordering::SeqCst);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::SeqCst),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::SeqCst),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::SeqCst),
            served_full: self.served_full.load(Ordering::SeqCst),
            served_reduced: self.served_reduced.load(Ordering::SeqCst),
            served_confidence: self.served_confidence.load(Ordering::SeqCst),
            expired: self.expired.load(Ordering::SeqCst),
            bad_input: self.bad_input.load(Ordering::SeqCst),
            worker_crashes: self.worker_crashes.load(Ordering::SeqCst),
            worker_respawns,
            shed_shutdown: self.shed_shutdown.load(Ordering::SeqCst),
            deadline_missed: self.deadline_missed.load(Ordering::SeqCst),
            recovery_count,
            recovery_mean_us: if recovery_count == 0 {
                0.0
            } else {
                recovery_total as f64 / recovery_count as f64
            },
            recovery_max_us: self.recovery_max_us.load(Ordering::SeqCst),
            latency_p50_us: self.latency.quantile(0.50),
            latency_p95_us: self.latency.quantile(0.95),
            latency_p99_us: self.latency.quantile(0.99),
        }
    }
}

/// A point-in-time copy of the server's counters and latency quantiles.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Submissions rejected with [`Rejected::QueueFull`](crate::Rejected::QueueFull).
    pub rejected_queue_full: u64,
    /// Submissions rejected because the server was shutting down.
    pub rejected_shutdown: u64,
    /// Responses served through the full-joint rung.
    pub served_full: u64,
    /// Responses served through the reduced (masked-tap) rung.
    pub served_reduced: u64,
    /// Responses served through the confidence-only rung.
    pub served_confidence: u64,
    /// Requests whose deadline passed before scoring began.
    pub expired: u64,
    /// Requests rejected by input validation (shape / non-finite).
    pub bad_input: u64,
    /// Worker panics observed (each poisons exactly one request).
    pub worker_crashes: u64,
    /// Workers respawned by the supervisor.
    pub worker_respawns: u64,
    /// Requests shed during shutdown.
    pub shed_shutdown: u64,
    /// Responses served after their deadline had already passed.
    pub deadline_missed: u64,
    /// Crash-to-recovered intervals observed.
    pub recovery_count: u64,
    /// Mean crash-to-recovered interval (µs).
    pub recovery_mean_us: f64,
    /// Worst crash-to-recovered interval (µs).
    pub recovery_max_us: u64,
    /// Median submission-to-response latency of served requests (µs).
    pub latency_p50_us: u64,
    /// 95th percentile served latency (µs).
    pub latency_p95_us: u64,
    /// 99th percentile served latency (µs).
    pub latency_p99_us: u64,
}

impl MetricsSnapshot {
    /// Total responses served through any rung.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served_full + self.served_reduced + self.served_confidence
    }

    /// Every terminal outcome accounted for: served, expired, bad-input,
    /// crashed, or shed. Equals `submitted` exactly when no request was
    /// lost or left hanging.
    #[must_use]
    pub fn terminal_outcomes(&self) -> u64 {
        self.served() + self.expired + self.bad_input + self.worker_crashes + self.shed_shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_floors_match() {
        let mut last = 0;
        for v in [0u64, 1, 7, 8, 9, 15, 16, 31, 100, 1000, 65_535, 1 << 40] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            last = idx;
            assert!(bucket_floor(idx) <= v, "floor above value at {v}");
            if idx + 1 < BUCKETS {
                assert!(bucket_floor(idx + 1) > v, "value past next floor at {v}");
            }
        }
    }

    #[test]
    fn quantiles_land_in_the_right_buckets() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // ≤ 12.5% bucket error plus midpoint rounding.
        assert!((400..=650).contains(&p50), "p50 {p50}");
        assert!((850..=1200).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(0.0).max(1), h.quantile(0.001).max(1));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn terminal_outcome_accounting_adds_up() {
        let m = Metrics::new();
        m.submitted.store(10, Ordering::SeqCst);
        m.served_full.store(5, Ordering::SeqCst);
        m.served_confidence.store(2, Ordering::SeqCst);
        m.expired.store(1, Ordering::SeqCst);
        m.worker_crashes.store(1, Ordering::SeqCst);
        m.shed_shutdown.store(1, Ordering::SeqCst);
        let s = m.snapshot(3);
        assert_eq!(s.served(), 7);
        assert_eq!(s.terminal_outcomes(), 10);
        assert_eq!(s.worker_respawns, 3);
    }
}
