//! Serving metrics, backed by the dv-trace registry.
//!
//! Each server owns a private [`MetricsRegistry`] (concurrent servers in
//! one process must not share counters), with the latency histogram
//! provided by `dv_trace::LogLinearHistogram` — the same log-linear
//! histogram this crate used to implement privately, promoted upstream
//! with bit-identical bucket and quantile math. The public
//! [`MetricsSnapshot`] API is unchanged from the pre-registry
//! implementation, and a registry-level JSON dump is available through
//! [`Server::metrics_json`](crate::Server::metrics_json).

use dv_trace::MetricsRegistry;

/// Registry names for every serving metric, in one place so the snapshot,
/// the JSON export, and the hot-path increments cannot drift apart.
pub(crate) mod names {
    /// Requests accepted into the queue.
    pub(crate) const SUBMITTED: &str = "serve.submitted";
    /// Submissions rejected under backpressure.
    pub(crate) const REJECTED_QUEUE_FULL: &str = "serve.rejected_queue_full";
    /// Submissions rejected during shutdown.
    pub(crate) const REJECTED_SHUTDOWN: &str = "serve.rejected_shutdown";
    /// Responses served through the full-joint rung.
    pub(crate) const SERVED_FULL: &str = "serve.served_full";
    /// Responses served through the reduced (masked-tap) rung.
    pub(crate) const SERVED_REDUCED: &str = "serve.served_reduced";
    /// Responses served through the confidence-only rung.
    pub(crate) const SERVED_CONFIDENCE: &str = "serve.served_confidence";
    /// Responses served degraded because the drift breaker was open.
    pub(crate) const SERVED_DRIFT_DEGRADED: &str = "serve.served_drift_degraded";
    /// Times the drift breaker opened (alert latched).
    pub(crate) const BREAKER_OPENED: &str = "serve.breaker_opened";
    /// Times the drift breaker closed (alert cleared).
    pub(crate) const BREAKER_CLOSED: &str = "serve.breaker_closed";
    /// Joint-discrepancy observations dropped on the worker→monitor
    /// queue (overflow; never blocks scoring).
    pub(crate) const DRIFT_OBS_DROPPED: &str = "serve.drift_obs_dropped";
    /// Requests whose deadline passed before scoring began.
    pub(crate) const EXPIRED: &str = "serve.expired";
    /// Requests rejected by input validation.
    pub(crate) const BAD_INPUT: &str = "serve.bad_input";
    /// Worker panics observed (crash *events*; a mid-batch panic is one
    /// event even though it parks several requests for retry).
    pub(crate) const WORKER_CRASHES: &str = "serve.worker_crashes";
    /// Requests that terminally failed with `WorkerCrashed` (after the
    /// single crash-retry for batch members). This — not
    /// [`WORKER_CRASHES`] — is the per-request terminal outcome.
    pub(crate) const REQUESTS_CRASHED: &str = "serve.requests_crashed";
    /// Requests served as part of a coalesced batch of ≥ 2.
    pub(crate) const COALESCED: &str = "serve.coalesced";
    /// Coalesced batches scored (each a single stacked forward pass).
    pub(crate) const BATCHES: &str = "serve.batches";
    /// Parked batch members re-scored singly after a mid-batch crash.
    pub(crate) const BATCH_RETRIED: &str = "serve.batch_retried";
    /// Requests shed during shutdown.
    pub(crate) const SHED_SHUTDOWN: &str = "serve.shed_shutdown";
    /// Responses served after their deadline passed.
    pub(crate) const DEADLINE_MISSED: &str = "serve.deadline_missed";
    /// Crash-to-recovered intervals observed.
    pub(crate) const RECOVERY_COUNT: &str = "serve.recovery_count";
    /// Summed crash-to-recovered time (µs).
    pub(crate) const RECOVERY_TOTAL_US: &str = "serve.recovery_total_us";
    /// Worst crash-to-recovered interval (µs).
    pub(crate) const RECOVERY_MAX_US: &str = "serve.recovery_max_us";
    /// Submission-to-response latency of served requests (µs).
    pub(crate) const LATENCY_US: &str = "serve.latency_us";
    /// Coalesced batch sizes (one sample per batch of ≥ 2).
    pub(crate) const BATCH_SIZE: &str = "serve.batch_size";
    /// Sampled submission-queue depth, set from the depth the queue
    /// itself reports on every push and drain (no extra atomics beyond
    /// the queue's own accounting).
    pub(crate) const QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Dequeue-to-score-start wait of coalesced batches (µs): how long
    /// batch assembly (parking, partitioning, staging) held the members
    /// after a worker had them in hand.
    pub(crate) const COALESCE_WAIT_US: &str = "serve.coalesce_wait_us";
}

/// All counter names, for eager registration.
const COUNTERS: &[&str] = &[
    names::SUBMITTED,
    names::REJECTED_QUEUE_FULL,
    names::REJECTED_SHUTDOWN,
    names::SERVED_FULL,
    names::SERVED_REDUCED,
    names::SERVED_CONFIDENCE,
    names::SERVED_DRIFT_DEGRADED,
    names::BREAKER_OPENED,
    names::BREAKER_CLOSED,
    names::DRIFT_OBS_DROPPED,
    names::EXPIRED,
    names::BAD_INPUT,
    names::WORKER_CRASHES,
    names::REQUESTS_CRASHED,
    names::COALESCED,
    names::BATCHES,
    names::BATCH_RETRIED,
    names::SHED_SHUTDOWN,
    names::DEADLINE_MISSED,
    names::RECOVERY_COUNT,
    names::RECOVERY_TOTAL_US,
    names::RECOVERY_MAX_US,
];

/// Per-server metrics: a private registry plus snapshot logic.
pub(crate) struct Metrics {
    reg: MetricsRegistry,
}

impl Metrics {
    /// A zeroed metrics block with every name eagerly registered, so an
    /// export taken before any traffic still lists the full schema.
    pub(crate) fn new() -> Self {
        let reg = MetricsRegistry::new();
        for name in COUNTERS {
            let _ = reg.counter(name);
        }
        let _ = reg.histogram(names::LATENCY_US);
        let _ = reg.histogram(names::BATCH_SIZE);
        let _ = reg.histogram(names::COALESCE_WAIT_US);
        let _ = reg.gauge(names::QUEUE_DEPTH);
        Self { reg }
    }

    /// The backing registry (for JSON export).
    pub(crate) fn registry(&self) -> &MetricsRegistry {
        &self.reg
    }

    /// Increments the counter registered under `name`.
    pub(crate) fn inc(&self, name: &'static str) {
        self.reg.counter(name).inc();
    }

    /// Records one served-request latency, tagging the landing bucket
    /// with the request's trace id so tail quantiles come back with a
    /// replayable exemplar.
    pub(crate) fn record_latency_us(&self, us: u64, trace: u64) {
        self.reg
            .histogram(names::LATENCY_US)
            .record_with_exemplar(us, trace);
    }

    /// The trace id exemplifying the latency bucket that holds the
    /// `q`-quantile (0 when nothing landed there yet).
    pub(crate) fn latency_exemplar(&self, q: f64) -> u64 {
        self.reg.histogram(names::LATENCY_US).quantile_exemplar(q)
    }

    /// Publishes a sampled submission-queue depth.
    pub(crate) fn set_queue_depth(&self, depth: u64) {
        self.reg.gauge(names::QUEUE_DEPTH).set(depth);
    }

    /// Records one coalesced batch's dequeue-to-score-start wait.
    pub(crate) fn record_coalesce_wait_us(&self, us: u64) {
        self.reg.histogram(names::COALESCE_WAIT_US).record(us);
    }

    /// Records one coalesced batch: its size sample plus the batch and
    /// per-member coalescing counters.
    pub(crate) fn record_batch(&self, size: u64) {
        self.reg.counter(names::BATCHES).inc();
        self.reg.counter(names::COALESCED).add(size);
        self.reg.histogram(names::BATCH_SIZE).record(size);
    }

    /// Records a crash-to-recovered interval (worker respawned, warmed,
    /// and back on the queue).
    pub(crate) fn record_recovery(&self, us: u64) {
        self.reg.counter(names::RECOVERY_COUNT).inc();
        self.reg.counter(names::RECOVERY_TOTAL_US).add(us);
        self.reg.counter(names::RECOVERY_MAX_US).raise_to(us);
    }

    pub(crate) fn snapshot(&self, worker_respawns: u64) -> MetricsSnapshot {
        let get = |name: &'static str| self.reg.counter(name).get();
        let latency = self.reg.histogram(names::LATENCY_US);
        let recovery_count = get(names::RECOVERY_COUNT);
        let recovery_total = get(names::RECOVERY_TOTAL_US);
        MetricsSnapshot {
            submitted: get(names::SUBMITTED),
            rejected_queue_full: get(names::REJECTED_QUEUE_FULL),
            rejected_shutdown: get(names::REJECTED_SHUTDOWN),
            served_full: get(names::SERVED_FULL),
            served_reduced: get(names::SERVED_REDUCED),
            served_confidence: get(names::SERVED_CONFIDENCE),
            served_drift_degraded: get(names::SERVED_DRIFT_DEGRADED),
            breaker_opened: get(names::BREAKER_OPENED),
            breaker_closed: get(names::BREAKER_CLOSED),
            drift_obs_dropped: get(names::DRIFT_OBS_DROPPED),
            expired: get(names::EXPIRED),
            bad_input: get(names::BAD_INPUT),
            worker_crashes: get(names::WORKER_CRASHES),
            requests_crashed: get(names::REQUESTS_CRASHED),
            coalesced: get(names::COALESCED),
            batches: get(names::BATCHES),
            batch_retried: get(names::BATCH_RETRIED),
            worker_respawns,
            shed_shutdown: get(names::SHED_SHUTDOWN),
            deadline_missed: get(names::DEADLINE_MISSED),
            recovery_count,
            recovery_mean_us: if recovery_count == 0 {
                0.0
            } else {
                recovery_total as f64 / recovery_count as f64
            },
            recovery_max_us: get(names::RECOVERY_MAX_US),
            latency_p50_us: latency.quantile(0.50),
            latency_p95_us: latency.quantile(0.95),
            latency_p99_us: latency.quantile(0.99),
        }
    }
}

/// A point-in-time copy of the server's counters and latency quantiles.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Submissions rejected with [`Rejected::QueueFull`](crate::Rejected::QueueFull).
    pub rejected_queue_full: u64,
    /// Submissions rejected because the server was shutting down.
    pub rejected_shutdown: u64,
    /// Responses served through the full-joint rung.
    pub served_full: u64,
    /// Responses served through the reduced (masked-tap) rung.
    pub served_reduced: u64,
    /// Responses served through the confidence-only rung.
    pub served_confidence: u64,
    /// Responses served degraded because the drift breaker was open.
    pub served_drift_degraded: u64,
    /// Times the drift breaker opened (drift alert latched).
    pub breaker_opened: u64,
    /// Times the drift breaker closed (drift alert cleared).
    pub breaker_closed: u64,
    /// Drift observations dropped on the worker→monitor queue.
    pub drift_obs_dropped: u64,
    /// Requests whose deadline passed before scoring began.
    pub expired: u64,
    /// Requests rejected by input validation (shape / non-finite).
    pub bad_input: u64,
    /// Worker panics observed (crash *events*). A panic on a single
    /// request poisons that request; a panic mid-batch parks the batch's
    /// members for one single-image retry each, so this can exceed
    /// [`requests_crashed`](MetricsSnapshot::requests_crashed).
    pub worker_crashes: u64,
    /// Requests that terminally failed with `WorkerCrashed` — the
    /// per-request crash outcome used by
    /// [`terminal_outcomes`](MetricsSnapshot::terminal_outcomes).
    pub requests_crashed: u64,
    /// Requests served as part of a coalesced batch of ≥ 2.
    pub coalesced: u64,
    /// Coalesced batches scored (one stacked forward pass each).
    pub batches: u64,
    /// Parked batch members re-scored singly after a mid-batch crash.
    pub batch_retried: u64,
    /// Workers respawned by the supervisor.
    pub worker_respawns: u64,
    /// Requests shed during shutdown.
    pub shed_shutdown: u64,
    /// Responses served after their deadline had already passed.
    pub deadline_missed: u64,
    /// Crash-to-recovered intervals observed.
    pub recovery_count: u64,
    /// Mean crash-to-recovered interval (µs).
    pub recovery_mean_us: f64,
    /// Worst crash-to-recovered interval (µs).
    pub recovery_max_us: u64,
    /// Median submission-to-response latency of served requests (µs).
    pub latency_p50_us: u64,
    /// 95th percentile served latency (µs).
    pub latency_p95_us: u64,
    /// 99th percentile served latency (µs).
    pub latency_p99_us: u64,
}

impl MetricsSnapshot {
    /// Total responses served through any rung (including the breaker's
    /// drift-degraded rung).
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served_full + self.served_reduced + self.served_confidence + self.served_drift_degraded
    }

    /// Every terminal outcome accounted for: served, expired, bad-input,
    /// crashed, or shed. Equals `submitted` exactly when no request was
    /// lost or left hanging.
    #[must_use]
    pub fn terminal_outcomes(&self) -> u64 {
        self.served() + self.expired + self.bad_input + self.requests_crashed + self.shed_shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_match_the_promoted_histogram() {
        // The histogram moved to dv-trace; the serve-visible quantiles
        // must stay inside the log-linear bucket holding the target
        // rank (now linearly interpolated within it).
        let m = Metrics::new();
        for v in 1..=1000u64 {
            m.record_latency_us(v, v);
        }
        let s = m.snapshot(0);
        assert!(
            (400..=650).contains(&s.latency_p50_us),
            "{}",
            s.latency_p50_us
        );
        assert!(
            (850..=1200).contains(&s.latency_p99_us),
            "{}",
            s.latency_p99_us
        );
    }

    #[test]
    fn empty_metrics_report_zero_quantiles() {
        let m = Metrics::new();
        let s = m.snapshot(0);
        assert_eq!(s.latency_p50_us, 0);
        assert_eq!(s.latency_p99_us, 0);
    }

    #[test]
    fn terminal_outcome_accounting_adds_up() {
        let m = Metrics::new();
        for _ in 0..10 {
            m.inc(names::SUBMITTED);
        }
        for _ in 0..5 {
            m.inc(names::SERVED_FULL);
        }
        m.inc(names::SERVED_CONFIDENCE);
        m.inc(names::SERVED_CONFIDENCE);
        m.inc(names::EXPIRED);
        // Two crash events, but only one request terminally crashed (the
        // other members were parked and retried): accounting follows the
        // per-request counter.
        m.inc(names::WORKER_CRASHES);
        m.inc(names::WORKER_CRASHES);
        m.inc(names::REQUESTS_CRASHED);
        m.inc(names::SHED_SHUTDOWN);
        let s = m.snapshot(3);
        assert_eq!(s.served(), 7);
        assert_eq!(s.terminal_outcomes(), 10);
        assert_eq!(s.worker_crashes, 2);
        assert_eq!(s.requests_crashed, 1);
        assert_eq!(s.worker_respawns, 3);
    }

    #[test]
    fn batch_recording_tracks_batches_and_members() {
        let m = Metrics::new();
        m.record_batch(4);
        m.record_batch(2);
        let s = m.snapshot(0);
        assert_eq!(s.batches, 2);
        assert_eq!(s.coalesced, 6);
    }

    #[test]
    fn recovery_statistics_are_exact() {
        let m = Metrics::new();
        m.record_recovery(100);
        m.record_recovery(300);
        let s = m.snapshot(0);
        assert_eq!(s.recovery_count, 2);
        assert!((s.recovery_mean_us - 200.0).abs() < 1e-9);
        assert_eq!(s.recovery_max_us, 300);
    }

    #[test]
    fn registry_export_lists_every_metric() {
        let m = Metrics::new();
        let json = dv_trace::metrics_json(m.registry());
        for name in COUNTERS {
            assert!(json.contains(name), "missing {name} in\n{json}");
        }
        assert!(json.contains(names::LATENCY_US));
        assert!(json.contains(names::BATCH_SIZE));
        assert!(json.contains(names::COALESCE_WAIT_US));
        assert!(json.contains(names::QUEUE_DEPTH));
    }

    #[test]
    fn latency_exemplar_points_at_the_tail_bucket() {
        let m = Metrics::new();
        // 99 fast requests, one slow one with trace id 1000.
        for seq in 0..99u64 {
            m.record_latency_us(50, seq + 1);
        }
        m.record_latency_us(90_000, 1000);
        assert_eq!(
            m.latency_exemplar(0.999),
            1000,
            "p999 bucket's exemplar is the slow request's trace id"
        );
    }
}
