//! `dv-serve`: a fault-tolerant request-serving frontend for Deep
//! Validation scoring.
//!
//! The paper's detector is meant to sit *in front of* a deployed
//! classifier, vetting every input at inference time — which means it
//! inherits a server's obligations, not a batch job's. This crate wraps
//! the allocation-free scoring path (`DeepValidator::score_into` over a
//! shared [`InferencePlan`](dv_nn::InferencePlan)) in exactly those
//! obligations:
//!
//! - **Backpressure, never blocking**: submissions go through a bounded
//!   queue; [`Server::try_submit`] fails fast with
//!   [`Rejected::QueueFull`] instead of queueing unboundedly or blocking
//!   the caller.
//! - **Per-request deadlines with graceful degradation**: each request
//!   carries a deadline, and a worker picks the richest scoring rung the
//!   remaining budget affords — full joint discrepancy, a masked-tap
//!   reduced score over the last validated layers, or a confidence-only
//!   fallback — recording the choice in [`ServedVia`].
//! - **Panic isolation**: a panicking worker poisons only its in-flight
//!   request (typed [`ScoreError::WorkerCrashed`], never a hang) and is
//!   respawned with a fresh warmed
//!   [`ScoreWorkspace`](dv_core::ScoreWorkspace).
//! - **Cooperative shutdown**: [`Server::shutdown`] drains or sheds the
//!   queue by [`ShutdownPolicy`]; every accepted request still reaches
//!   exactly one terminal outcome.
//!
//! Every thread and synchronization primitive comes from `dv-runtime`
//! ([`Crew`](dv_runtime::Crew), [`BoundedQueue`](dv_runtime::BoundedQueue),
//! [`oneshot`](dv_runtime::oneshot)); this crate adds only the serving
//! policy. With the deadline generous and no faults injected, a served
//! [`ScoreResponse`] is bit-identical to calling `score_into` directly on
//! the same plan.
//!
//! The `fault-inject` feature gates a deterministic [`FaultPlan`] hook
//! (worker panics, latency spikes) used by the robustness tests and the
//! `serve_soak` benchmark harness.
//!
//! An optional drift circuit breaker ([`BreakerConfig`]) attaches a
//! `dv_drift::DriftMonitor` to the joint-discrepancy stream: workers
//! feed full-joint scores to the supervision thread over a bounded
//! queue (drops counted, never blocking the scoring path), and a
//! latched drift alert flips serving to the
//! [`ServedVia::DriftDegraded`] rung until the stream recovers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
#[cfg(feature = "fault-inject")]
mod fault;
mod metrics;
mod response;
mod retry;
mod server;

pub use config::{BreakerConfig, ServeConfig, ShutdownPolicy};
#[cfg(feature = "fault-inject")]
pub use fault::FaultPlan;
pub use metrics::MetricsSnapshot;
pub use response::{Outcome, Pending, Rejected, ScoreResponse, ServedVia};
pub use retry::RetryPolicy;
pub use server::Server;

pub use dv_core::{BadInput, ScoreError};
