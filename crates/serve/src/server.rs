//! The serving frontend: pinned workers over a bounded queue, with
//! deadline-driven degradation, adaptive batching, panic isolation, and
//! supervised respawn.
//!
//! Under burst load a worker wakeup drains up to
//! [`ServeConfig::max_batch`] queued requests and coalesces the ones
//! that can afford full-batch latency into a single stacked forward
//! pass (see [`serve_drained`]); queue depth becomes batch size instead
//! of `QueueFull` rejections. Coalescing never waits: an idle server
//! still serves singles at single-request latency.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dv_core::{DeepValidator, ScoreError, ScoreWorkspace};
use dv_drift::{DriftEvent, DriftMonitor};
use dv_nn::InferencePlan;
use dv_runtime::{oneshot, BoundedQueue, Crew, Drained, HoldingPen, Popped, Promise, PushRejected};
use dv_tensor::Tensor;

use crate::config::{BreakerConfig, ServeConfig, ShutdownPolicy};
use crate::metrics::{names, Metrics, MetricsSnapshot};
use crate::response::{Outcome, Pending, Rejected, ScoreResponse, ServedVia};

/// How often an idle worker re-checks the queue for shutdown.
const POP_TICK: Duration = Duration::from_millis(5);

/// How often the monitor reaps and respawns crashed workers.
const SUPERVISE_TICK: Duration = Duration::from_millis(1);

/// Safety factor between the remaining deadline budget and a rung's
/// warmup-measured cost: a rung is only chosen when the budget is at
/// least twice its estimate, so normal jitter does not turn a chosen
/// rung into a deadline miss. The same margin guards batch admission.
const RUNG_MARGIN: u64 = 2;

/// Fallback `retry_after` before any job has been drained (no observed
/// drain rate yet).
const RETRY_AFTER_DEFAULT_US: u64 = 1_000;

/// One queued scoring request. Dropping a `Job` without fulfilling its
/// promise breaks the caller's ticket — which is exactly what makes an
/// unwinding worker surface as [`ScoreError::WorkerCrashed`] instead of
/// a hang.
struct Job {
    image: Tensor,
    promise: Promise<Outcome>,
    submitted: Instant,
    deadline: Instant,
    seq: u64,
    /// Submission time on the trace epoch, for the `serve.queued` span
    /// (0 when tracing is compiled out).
    submitted_ns: u64,
    /// Request-scoped trace id (`seq + 1`), assigned in `try_submit`
    /// whether or not tracing is compiled in so responses always carry
    /// it.
    trace: dv_trace::TraceId,
    /// The request's most recent lifecycle event, threaded through the
    /// pipeline as the causal parent of the next one (NONE when tracing
    /// is off or the request is outside the sample).
    last_event: dv_trace::EventRef,
}

/// One worker→monitor drift observation: a full-joint score's joint
/// discrepancy tagged with its request sequence number, so the monitor
/// can ingest in sequence order regardless of worker interleaving.
#[derive(Clone, Copy)]
struct Obs {
    seq: u64,
    joint: f32,
}

/// Breaker state shared between the workers (producers, plus readers of
/// the open flag) and the supervision thread (the only consumer, which
/// owns the actual [`DriftMonitor`]).
struct BreakerShared {
    cfg: BreakerConfig,
    /// Worker→monitor observation queue; overflow drops (counted),
    /// never blocks the scoring path.
    obs: BoundedQueue<Obs>,
    /// True while a drift alert is latched: serve degraded.
    open: AtomicBool,
}

struct Shared {
    validator: Arc<DeepValidator>,
    plan: Arc<InferencePlan>,
    cfg: ServeConfig,
    queue: BoundedQueue<Job>,
    metrics: Metrics,
    /// Present when [`ServeConfig::breaker`] was set.
    breaker: Option<BreakerShared>,
    /// Record spans for every `trace_sample`-th request (1 = all); from
    /// `DV_TRACE_SAMPLE`, cached at server start.
    trace_sample: u64,
    start: Instant,
    /// Cleared at the start of shutdown: submissions are refused.
    accepting: AtomicBool,
    /// Set during a [`ShutdownPolicy::Shed`] drain: popped jobs are
    /// failed with [`ScoreError::Shutdown`] instead of served.
    shedding: AtomicBool,
    /// Tells the monitor loop to exit.
    stop_monitor: AtomicBool,
    /// Monotone request sequence numbers (also the fault-injection key).
    seq: AtomicU64,
    /// Per-slot crash timestamps (µs since server start, 0 = none):
    /// written when an incarnation unwinds, consumed by the respawned
    /// incarnation to report its crash-to-recovered interval.
    crash_stamp_us: Vec<AtomicU64>,
    /// Per-slot crash-retry holding pen: a worker parks everything it
    /// drained (coalesced batch members first, then the jobs it will
    /// serve singly) here *before* scoring anything, so a panic
    /// anywhere in the wakeup leaves every not-yet-served promise
    /// intact for a single-image retry on the respawned incarnation.
    /// The [`HoldingPen`] API holds its lock only inside each call —
    /// never across scoring — and incarnations of one slot are
    /// serialized by the supervisor, so it cannot be contended into a
    /// stall.
    parked: Vec<HoldingPen<Job>>,
    /// Per-slot flag: a *single* (non-batch) request is being scored. A
    /// panic with this set is a terminal per-request crash — there is no
    /// parked copy to retry — so `worker_body` counts it in
    /// `requests_crashed`.
    single_in_flight: Vec<AtomicBool>,
    /// Total jobs drained off the queue by workers, for the observed
    /// drain rate behind [`Rejected::QueueFull`]'s `retry_after`.
    popped_jobs: AtomicU64,
    /// Per-slot trace id of the single request currently being scored
    /// (0 = none / unsampled), so `worker_body` can attribute a crash
    /// event to the request that died with the worker. The matching
    /// causal parent lives in `inflight_parent`.
    inflight_trace: Vec<AtomicU64>,
    /// Per-slot causal parent for the in-flight single's crash event.
    inflight_parent: Vec<AtomicU64>,
}

impl Shared {
    fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Whether request `seq`'s lifecycle events should be recorded:
    /// tracing is compiled in *and* the request falls in the
    /// deterministic `DV_TRACE_SAMPLE` sample. `tracing_enabled()` is a
    /// constant, so with the feature off this folds to `false` and
    /// every event call site compiles away.
    fn traced(&self, seq: u64) -> bool {
        dv_trace::tracing_enabled()
            && (self.trace_sample <= 1 || seq.is_multiple_of(self.trace_sample))
    }

    /// Backpressure hint: mean observed time per drained job (how long
    /// until one queue slot frees up), clamped to a sane band, with a
    /// fixed default before any job has been drained.
    fn retry_after(&self) -> Duration {
        let popped = self.popped_jobs.load(Ordering::SeqCst);
        let us = self
            .elapsed_us()
            .checked_div(popped)
            .map_or(RETRY_AFTER_DEFAULT_US, |per_job| per_job.clamp(50, 100_000));
        Duration::from_micros(us)
    }
}

/// Warmup-measured per-rung cost estimates for one worker incarnation,
/// refined online (see [`refine_estimate`]) from observed scoring times
/// so a noisy warmup cannot permanently miscalibrate the ladder.
struct RungEstimates {
    full_us: u64,
    reduced_us: u64,
    /// Amortized per-image cost inside a stacked batch (≤ `full_us`:
    /// the GEMM amortizes packing across rows).
    batch_item_us: u64,
}

/// 4:1 EWMA of an estimate toward an observed scoring duration. Warmup
/// (min over a few reps on an otherwise idle thread) seeds the value;
/// this keeps it honest over the incarnation's lifetime, which is what
/// makes the deadline sweep monotone — the seed repo's 750µs-beats-1000µs
/// inversion came from per-incarnation warmup variance that a one-shot
/// estimate never corrected.
fn refine_estimate(est: &mut u64, observed_us: u64) {
    *est = (*est * 3 + observed_us).div_ceil(4).max(1);
}

/// The degradation ladder's decision: richest rung whose estimated cost,
/// padded by [`RUNG_MARGIN`], fits the remaining deadline budget.
/// Confidence-only is the unconditional floor — any request that has not
/// already expired gets at least a prediction.
fn pick_rung(remaining_us: u64, est: &RungEstimates, reduced_enabled: bool) -> Rung {
    if remaining_us >= est.full_us.saturating_mul(RUNG_MARGIN) {
        Rung::Full
    } else if reduced_enabled && remaining_us >= est.reduced_us.saturating_mul(RUNG_MARGIN) {
        Rung::Reduced
    } else {
        Rung::Confidence
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rung {
    Full,
    Reduced,
    Confidence,
}

/// Per-incarnation worker state: scratch buffers, the reduced-rung tap
/// list, and the (mutable, online-refined) rung cost estimates.
struct WorkerCtx {
    sw: ScoreWorkspace,
    per_layer: Vec<f32>,
    /// Batch scoring outputs, reused across batches.
    results: Vec<(usize, f32)>,
    batch_pl: Vec<f32>,
    reduced_keep: Vec<usize>,
    est: RungEstimates,
    max_batch: usize,
}

/// A running scoring server. Dropping it without
/// [`shutdown`](Server::shutdown) sheds the backlog and joins the
/// workers, so no request is ever left hanging.
pub struct Server {
    shared: Arc<Shared>,
    workers: Crew,
    monitor: Crew,
    finished: bool,
}

impl Server {
    /// Spawns the worker and monitor threads and starts serving.
    ///
    /// The validator and plan are shared immutably with every worker;
    /// each worker incarnation builds and warms its own
    /// [`ScoreWorkspace`] (sized for `max_batch`), so nothing mutable is
    /// shared on the scoring path.
    pub fn start(
        validator: Arc<DeepValidator>,
        plan: Arc<InferencePlan>,
        cfg: ServeConfig,
    ) -> Self {
        let workers = cfg.workers.max(1);
        let breaker = cfg.breaker.clone().map(|bc| BreakerShared {
            obs: BoundedQueue::bounded(bc.obs_capacity.max(1)),
            open: AtomicBool::new(false),
            cfg: bc,
        });
        let shared = Arc::new(Shared {
            queue: BoundedQueue::bounded(cfg.queue_capacity),
            metrics: Metrics::new(),
            breaker,
            trace_sample: dv_runtime::config::trace_sample_every(),
            start: Instant::now(),
            accepting: AtomicBool::new(true),
            shedding: AtomicBool::new(false),
            stop_monitor: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            crash_stamp_us: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            parked: (0..workers).map(|_| HoldingPen::new()).collect(),
            single_in_flight: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            popped_jobs: AtomicU64::new(0),
            inflight_trace: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            inflight_parent: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            validator,
            plan,
            cfg,
        });

        let shared_w = Arc::clone(&shared);
        let crew = Crew::spawn("dv-serve-worker", workers, move |slot| {
            worker_body(&shared_w, slot);
        });

        let shared_m = Arc::clone(&shared);
        let crew_m = crew.clone();
        let monitor = Crew::spawn("dv-serve-monitor", 1, move |_slot| {
            // Per-incarnation drift state: a respawned monitor starts a
            // fresh calibration, but the breaker's open flag lives in
            // Shared, so an already-open breaker stays open until the
            // new monitor calibrates and observes recovery.
            let mut drift = shared_m
                .breaker
                .as_ref()
                .map(|b| DriftMonitor::new(b.cfg.drift));
            let mut batch: Vec<Obs> = Vec::new();
            while !shared_m.stop_monitor.load(Ordering::SeqCst) {
                crew_m.supervise();
                ingest_drift_obs(&shared_m, drift.as_mut(), &mut batch);
                std::thread::sleep(SUPERVISE_TICK);
            }
            // Final drain so observations pushed just before shutdown
            // still reach the published gauges.
            ingest_drift_obs(&shared_m, drift.as_mut(), &mut batch);
        });

        Self {
            shared,
            workers: crew,
            monitor,
            finished: false,
        }
    }

    /// Submits an image for scoring without ever blocking.
    ///
    /// # Errors
    ///
    /// Returns [`Rejected::QueueFull`] (carrying a drain-rate-derived
    /// `retry_after` hint) under backpressure and
    /// [`Rejected::ShuttingDown`] once shutdown began; in both cases the
    /// image is dropped and nothing was enqueued.
    pub fn try_submit(&self, image: Tensor) -> Result<Pending, Rejected> {
        if !self.shared.accepting.load(Ordering::SeqCst) {
            self.shared.metrics.inc(names::REJECTED_SHUTDOWN);
            return Err(Rejected::ShuttingDown);
        }
        let seq = self.shared.seq.fetch_add(1, Ordering::SeqCst);
        let now = Instant::now();
        let (promise, ticket) = oneshot();
        let trace = dv_trace::TraceId::from_seq(seq);
        // The enqueue event is recorded on the client thread *before*
        // the push so its timestamp precedes every worker-side event; a
        // rejected push leaves a dangling one-event timeline, which the
        // stitcher tolerates (no segments, no flow arrows).
        let last_event = if self.shared.traced(seq) {
            dv_trace::record_event("serve.enqueued", trace, dv_trace::EventRef::NONE, 0)
        } else {
            dv_trace::EventRef::NONE
        };
        let job = Job {
            image,
            promise,
            submitted: now,
            deadline: now + self.shared.cfg.deadline,
            seq,
            submitted_ns: if dv_trace::tracing_enabled() {
                dv_trace::now_ns()
            } else {
                0
            },
            trace,
            last_event,
        };
        match self.shared.queue.try_push(job) {
            Ok(depth) => {
                self.shared.metrics.inc(names::SUBMITTED);
                self.shared.metrics.set_queue_depth(depth as u64);
                Ok(Pending { ticket })
            }
            Err(PushRejected::Full(job)) => {
                drop(job);
                self.shared.metrics.inc(names::REJECTED_QUEUE_FULL);
                Err(Rejected::QueueFull {
                    retry_after: self.shared.retry_after(),
                })
            }
            Err(PushRejected::Closed(job)) => {
                drop(job);
                self.shared.metrics.inc(names::REJECTED_SHUTDOWN);
                Err(Rejected::ShuttingDown)
            }
        }
    }

    /// Current submission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// A point-in-time copy of the serving counters and latency
    /// quantiles.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(self.workers.respawns())
    }

    /// The server's metric registry as flat JSON (counters plus latency
    /// histogram quantiles), for dumping alongside trace exports.
    pub fn metrics_json(&self) -> String {
        dv_trace::metrics_json(self.shared.metrics.registry())
    }

    /// The trace id exemplifying the latency bucket that currently
    /// holds the `q`-quantile (0 when no request has landed there).
    /// Resolve it against [`dv_trace::stitch`]'s timelines — or a
    /// [`ScoreResponse::trace`](crate::ScoreResponse) — to replay
    /// exactly what a tail request went through.
    pub fn latency_exemplar(&self, q: f64) -> u64 {
        self.shared.metrics.latency_exemplar(q)
    }

    /// Shuts down cooperatively per the configured [`ShutdownPolicy`]
    /// and returns the final metrics. Every accepted request reaches a
    /// terminal outcome before this returns.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.finish();
        self.shared.metrics.snapshot(self.workers.respawns())
    }

    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.shared.accepting.store(false, Ordering::SeqCst);
        // Stop supervision before closing the queue: workers exiting
        // normally on queue-close must not be resurrected.
        self.shared.stop_monitor.store(true, Ordering::SeqCst);
        self.monitor.stop();
        self.monitor.join();
        self.workers.stop();
        let shed = self.shared.cfg.shutdown == ShutdownPolicy::Shed;
        if shed {
            self.shared.shedding.store(true, Ordering::SeqCst);
        }
        self.shared.queue.close();
        if shed {
            self.shed_backlog();
        }
        self.workers.join();
        // Pathological safety nets, reached only when a worker crashed
        // with supervision already stopped: jobs it parked mid-batch (no
        // incarnation left to retry them) and jobs still queued (every
        // worker dead mid-drain) are failed rather than left hanging.
        self.shed_parked();
        self.shed_backlog();
    }

    fn shed_backlog(&self) {
        while let Popped::Item(job) = self.shared.queue.try_pop() {
            self.shared.metrics.inc(names::SHED_SHUTDOWN);
            job.promise.fulfill(Err(ScoreError::Shutdown));
        }
    }

    /// Fails every still-parked crash-retry job. Only called after
    /// `workers.join()`, so no worker can be touching the pens.
    fn shed_parked(&self) {
        for pen in &self.shared.parked {
            while let Some(job) = pen.pop_front() {
                self.shared.metrics.inc(names::SHED_SHUTDOWN);
                job.promise.fulfill(Err(ScoreError::Shutdown));
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Drains the worker→monitor observation queue into the drift monitor,
/// flips the breaker on latched events, and republishes the drift
/// gauges. Workers race on the queue, so each batch is sorted by
/// sequence number before ingestion — the monitor stays a pure function
/// of the observation sequence.
fn ingest_drift_obs(shared: &Arc<Shared>, drift: Option<&mut DriftMonitor>, batch: &mut Vec<Obs>) {
    let (Some(b), Some(mon)) = (shared.breaker.as_ref(), drift) else {
        return;
    };
    batch.clear();
    while let Popped::Item(o) = b.obs.try_pop() {
        batch.push(o);
    }
    if batch.is_empty() {
        return;
    }
    batch.sort_by_key(|o| o.seq);
    for o in batch.drain(..) {
        match mon.observe(o.joint, &[]) {
            Some(DriftEvent::Raised(_)) => {
                b.open.store(true, Ordering::SeqCst);
                shared.metrics.inc(names::BREAKER_OPENED);
                // The breaker decision lands on the timeline of the
                // observation that tripped it, so a degraded tail
                // response can be traced back to the cause.
                dv_trace::record_event(
                    "serve.breaker_open",
                    dv_trace::TraceId::from_seq(o.seq),
                    dv_trace::EventRef::NONE,
                    0,
                );
            }
            Some(DriftEvent::Cleared(_)) => {
                b.open.store(false, Ordering::SeqCst);
                shared.metrics.inc(names::BREAKER_CLOSED);
                dv_trace::record_event(
                    "serve.breaker_close",
                    dv_trace::TraceId::from_seq(o.seq),
                    dv_trace::EventRef::NONE,
                    0,
                );
            }
            None => {}
        }
    }
    mon.publish(shared.metrics.registry());
}

/// One worker incarnation: warm up, report recovery if this is a
/// respawn, retry anything the crashed predecessor parked, then serve
/// until the queue closes. A panic anywhere inside is caught here; if a
/// single request was in flight its broken promise is the terminal
/// crash outcome, while a parked batch survives for the next
/// incarnation to retry.
fn worker_body(shared: &Arc<Shared>, slot: usize) {
    let crashed = catch_unwind(AssertUnwindSafe(|| worker_loop(shared, slot))).is_err();
    if crashed {
        shared.metrics.inc(names::WORKER_CRASHES);
        if shared.single_in_flight[slot].swap(false, Ordering::SeqCst) {
            // The unwound request had no parked copy: its dropped
            // promise is a terminal WorkerCrashed outcome.
            shared.metrics.inc(names::REQUESTS_CRASHED);
        }
        // Attribute the crash on the dying request's timeline. The
        // stash is only non-zero while a sampled single is in flight;
        // batch members record their own crash event before the panic
        // (see `serve_batch`), since their promises survive in the pen.
        let trace = shared.inflight_trace[slot].swap(0, Ordering::SeqCst);
        let parent = shared.inflight_parent[slot].swap(0, Ordering::SeqCst);
        if trace != 0 {
            dv_trace::record_event(
                "serve.crashed",
                dv_trace::TraceId(trace),
                dv_trace::EventRef(parent),
                0,
            );
        }
        shared.crash_stamp_us[slot].store(shared.elapsed_us().max(1), Ordering::SeqCst);
    }
}

fn worker_loop(shared: &Arc<Shared>, slot: usize) {
    // Per-incarnation state: a fresh workspace (so a respawn can never
    // see a crashed predecessor's buffers) sized for max_batch and
    // warmed on dummy inputs, plus the rung cost estimates the
    // degradation ladder consults.
    let max_batch = shared.cfg.max_batch.max(1);
    let mut sw = ScoreWorkspace::new();
    sw.reserve_for_batch(&shared.plan, max_batch);
    let mut ctx = WorkerCtx {
        per_layer: Vec::new(),
        results: Vec::new(),
        batch_pl: Vec::new(),
        reduced_keep: reduced_keep_list(shared),
        est: RungEstimates {
            full_us: 0,
            reduced_us: 0,
            batch_item_us: 0,
        },
        max_batch,
        sw,
    };
    ctx.est = warm_up(shared, &mut ctx);

    // If the previous incarnation of this slot crashed, the gap from its
    // crash to now (respawned, warmed, ready) is the recovery time.
    let stamp = shared.crash_stamp_us[slot].swap(0, Ordering::SeqCst);
    if stamp != 0 {
        shared
            .metrics
            .record_recovery(shared.elapsed_us().saturating_sub(stamp));
    }

    // Crash-retry: whatever the crashed predecessor parked is re-scored
    // singly, once each, before any new work — the batch that crashed
    // never crashes the same requests into limbo twice.
    serve_parked(shared, slot, &mut ctx, true);

    let mut drained: Vec<Job> = Vec::with_capacity(max_batch);
    loop {
        drained.clear();
        match shared.queue.drain_up_to(max_batch, POP_TICK, &mut drained) {
            Drained::Items { taken, depth } => {
                shared.popped_jobs.fetch_add(taken as u64, Ordering::SeqCst);
                shared.metrics.set_queue_depth(depth as u64);
                let drained_at = Instant::now();
                for job in drained.iter_mut() {
                    if shared.traced(job.seq) {
                        job.last_event =
                            dv_trace::record_event("serve.dequeued", job.trace, job.last_event, 0);
                    }
                }
                serve_drained(shared, slot, &mut drained, &mut ctx, drained_at);
            }
            Drained::Empty => {}
            Drained::Closed => return,
        }
    }
}

/// Pops the slot's holding pen one job at a time through the
/// single-request path. With `as_retry` (a respawned incarnation
/// recovering a crashed predecessor's pen), each pop counts in
/// `batch_retried`; the job whose injected (or genuine) fault killed
/// the batch will crash again here — with `single_in_flight` set, so
/// exactly that request terminally counts as crashed — and the jobs
/// still parked survive for the *next* incarnation, which resumes this
/// drain. Without `as_retry` this is just the normal post-batch
/// single-serve loop (jobs pass through the pen so none of them can be
/// dropped promise-unfulfilled by a panic in an earlier single).
fn serve_parked(shared: &Arc<Shared>, slot: usize, ctx: &mut WorkerCtx, as_retry: bool) {
    loop {
        let Some(mut job) = shared.parked[slot].pop_front() else {
            return;
        };
        if as_retry {
            shared.metrics.inc(names::BATCH_RETRIED);
            if shared.traced(job.seq) {
                job.last_event =
                    dv_trace::record_event("serve.retried", job.trace, job.last_event, 0);
            }
        }
        serve_job(shared, slot, job, ctx);
    }
}

/// The trailing validated-probe positions the reduced rung keeps, or an
/// empty list when the middle rung is disabled (no taps configured, or
/// it would not actually be cheaper than full scoring).
fn reduced_keep_list(shared: &Arc<Shared>) -> Vec<usize> {
    let total = shared.validator.num_validated_layers();
    let keep = shared.cfg.reduced_taps.min(total);
    if keep == 0 || keep >= total {
        return Vec::new();
    }
    (total - keep..total).collect()
}

/// Scores zeros-images through every rung a couple of times: grows the
/// workspace to its steady allocation-free size and measures per-rung
/// cost (min over reps, so a cold first pass does not inflate the
/// estimate), including the amortized per-image cost of a full
/// `max_batch` stacked pass.
fn warm_up(shared: &Arc<Shared>, ctx: &mut WorkerCtx) -> RungEstimates {
    const REPS: usize = 3;
    dv_trace::span!("serve.warmup");
    let dummy = Tensor::zeros(shared.plan.input_dims());
    let mut full_us = u64::MAX;
    let mut reduced_us = u64::MAX;
    let mut batch_total_us = u64::MAX;
    let batch_dummies: Vec<Tensor> = vec![dummy.clone(); ctx.max_batch];
    for _ in 0..REPS {
        let t0 = Instant::now();
        shared
            .validator
            .score_into(&shared.plan, &dummy, &mut ctx.sw, &mut ctx.per_layer)
            .expect("zeros warmup image always matches the plan input");
        full_us = full_us.min(t0.elapsed().as_micros() as u64);
        if !ctx.reduced_keep.is_empty() {
            let t0 = Instant::now();
            shared
                .validator
                .score_masked_into(
                    &shared.plan,
                    &dummy,
                    &ctx.reduced_keep,
                    &mut ctx.sw,
                    &mut ctx.per_layer,
                )
                .expect("zeros warmup image always matches the plan input");
            reduced_us = reduced_us.min(t0.elapsed().as_micros() as u64);
        }
        // Confidence-only rung: warmed implicitly (it is masked scoring
        // with an empty keep list), and always affordable by definition.
        shared
            .validator
            .score_masked_into(&shared.plan, &dummy, &[], &mut ctx.sw, &mut ctx.per_layer)
            .expect("zeros warmup image always matches the plan input");
        if ctx.max_batch > 1 {
            let t0 = Instant::now();
            shared
                .validator
                .score_batch_into(
                    &shared.plan,
                    &batch_dummies,
                    &mut ctx.sw,
                    &mut ctx.results,
                    &mut ctx.batch_pl,
                )
                .expect("zeros warmup images always match the plan input");
            batch_total_us = batch_total_us.min(t0.elapsed().as_micros() as u64);
        }
    }
    RungEstimates {
        full_us,
        reduced_us: if ctx.reduced_keep.is_empty() {
            0
        } else {
            reduced_us
        },
        batch_item_us: if ctx.max_batch > 1 {
            (batch_total_us / ctx.max_batch as u64).max(1)
        } else {
            full_us.max(1)
        },
    }
}

/// Dispatches one drained wakeup's worth of jobs: a single job goes
/// straight down the single-request path; several are partitioned by a
/// greedy FIFO scan into one full-rung coalesced batch plus individual
/// leftovers.
///
/// Admission to the batch is deadline-aware and never coalesces past
/// the tightest deadline already admitted: a candidate joins only if
/// *every* admitted member (and the candidate itself) could still
/// afford a full batch of the grown size, i.e.
/// `min(remaining budgets) ≥ RUNG_MARGIN × batch_item_us × (B + 1)`.
/// Everything else — shed, expired, spiking, breaker-degraded,
/// tight-budget, malformed — falls down the existing single-request
/// degrade ladder individually.
///
/// Every job that survives partition is parked in the slot's holding
/// pen (batch members first, then the singles) *before* anything is
/// scored: a panic at any point of the wakeup — mid-batch or mid-single
/// — leaves every not-yet-served promise recoverable.
fn serve_drained(
    shared: &Arc<Shared>,
    slot: usize,
    drained: &mut Vec<Job>,
    ctx: &mut WorkerCtx,
    drained_at: Instant,
) {
    if drained.len() == 1 {
        let job = drained.pop().expect("length checked above");
        serve_job(shared, slot, job, ctx);
        return;
    }
    let now = Instant::now();
    let mut batch_jobs: Vec<Job> = Vec::with_capacity(drained.len());
    let mut singles: Vec<Job> = Vec::new();
    let mut min_remaining_us = u64::MAX;
    ctx.sw.begin_batch();
    for job in drained.drain(..) {
        if shared.shedding.load(Ordering::SeqCst) || now >= job.deadline {
            // Terminal either way; let the single path apply its
            // existing shed/expired handling.
            singles.push(job);
            continue;
        }
        #[cfg(feature = "fault-inject")]
        if let Some(faults) = &shared.cfg.faults {
            if faults.spike_hits(job.seq) {
                // A spiking request sleeps; keep it out of the batch so
                // it cannot stall co-batched deadlines.
                singles.push(job);
                continue;
            }
        }
        if let Some(b) = shared.breaker.as_ref() {
            let probe = b.cfg.probe_every > 0 && job.seq % b.cfg.probe_every == 0;
            if b.open.load(Ordering::SeqCst) && !probe {
                // Must serve DriftDegraded, not full: single path.
                singles.push(job);
                continue;
            }
        }
        let remaining_us = job.deadline.duration_since(now).as_micros() as u64;
        let grown = batch_jobs.len() as u64 + 1;
        let cost_us = ctx.est.batch_item_us.saturating_mul(grown);
        if min_remaining_us.min(remaining_us) < cost_us.saturating_mul(RUNG_MARGIN) {
            singles.push(job);
            continue;
        }
        match ctx.sw.stage_image(&shared.plan, &job.image) {
            Ok(()) => {
                min_remaining_us = min_remaining_us.min(remaining_us);
                batch_jobs.push(job);
            }
            Err(e) => {
                // Malformed input: terminal right here, exactly as the
                // single path would decide (staging is validation).
                shared.metrics.inc(names::BAD_INPUT);
                job.promise.fulfill(Err(e));
            }
        }
    }
    let n = batch_jobs.len();
    if n >= 2 {
        for job in batch_jobs.iter_mut() {
            if shared.traced(job.seq) {
                job.last_event = dv_trace::record_event(
                    "serve.batch_joined",
                    job.trace,
                    job.last_event,
                    n as u64,
                );
            }
        }
    } else {
        for job in batch_jobs.iter_mut() {
            if shared.traced(job.seq) {
                job.last_event =
                    dv_trace::record_event("serve.parked", job.trace, job.last_event, 0);
            }
        }
    }
    for job in singles.iter_mut() {
        if shared.traced(job.seq) {
            job.last_event = dv_trace::record_event("serve.parked", job.trace, job.last_event, 0);
        }
    }
    shared.parked[slot].park(batch_jobs);
    shared.parked[slot].park(singles);
    if n >= 2 {
        serve_batch(shared, slot, n, ctx, drained_at);
    }
    // A "batch" of one gains nothing over the single path (its staged
    // pixels are simply discarded by the next begin_batch); it is the
    // front of the pen and serves singly like the rest.
    serve_parked(shared, slot, ctx, false);
}

/// Scores one coalesced batch — the first `n` jobs of the slot's
/// holding pen, already staged into `ctx.sw` in pen order — through a
/// single stacked forward pass and fulfills every member with a
/// full-joint response.
///
/// The jobs were parked *before* this is called: a panic anywhere in
/// here (fault injection or a genuine scoring bug) leaves every promise
/// intact inside the pen, where the respawned incarnation retries them
/// singly.
fn serve_batch(
    shared: &Arc<Shared>,
    slot: usize,
    n: usize,
    ctx: &mut WorkerCtx,
    drained_at: Instant,
) {
    dv_trace::span!("serve.batch");
    if dv_trace::tracing_enabled() {
        let now_ns = dv_trace::now_ns();
        shared.parked[slot].for_front(n, |job| {
            dv_trace::record_raw("serve.queued", job.submitted_ns, now_ns);
        });
    }
    #[cfg(feature = "fault-inject")]
    if let Some(faults) = &shared.cfg.faults {
        let mut panic_seq = None;
        shared.parked[slot].for_front(n, |job| {
            if panic_seq.is_none() && faults.panic_hits(job.seq) {
                panic_seq = Some(job.seq);
            }
        });
        if let Some(seq) = panic_seq {
            // The guilty member's crash shows on its own timeline (its
            // promise survives in the pen, so `worker_body`'s
            // single-in-flight stash never sees it).
            shared.parked[slot].for_front_mut(n, |job| {
                if job.seq == seq && shared.traced(job.seq) {
                    job.last_event =
                        dv_trace::record_event("serve.crashed", job.trace, job.last_event, 0);
                }
            });
            // The members are parked, so this unwind breaks no promise:
            // the respawned incarnation retries each singly, and only
            // the guilty request (which deterministically re-panics)
            // terminally crashes.
            panic!("injected fault: worker panic on request {seq} (mid-batch)");
        }
    }

    let t0 = Instant::now();
    shared
        .metrics
        .record_coalesce_wait_us(t0.duration_since(drained_at).as_micros() as u64);
    shared.parked[slot].for_front_mut(n, |job| {
        if shared.traced(job.seq) {
            job.last_event = dv_trace::record_event(
                "serve.score_begin",
                job.trace,
                job.last_event,
                ServedVia::FullJoint.code(),
            );
        }
    });
    shared.validator.score_staged_into(
        &shared.plan,
        &mut ctx.sw,
        &mut ctx.results,
        &mut ctx.batch_pl,
    );
    let scoring_us = t0.elapsed().as_micros() as u64;
    refine_estimate(&mut ctx.est.batch_item_us, (scoring_us / n as u64).max(1));
    shared.parked[slot].for_front_mut(n, |job| {
        if shared.traced(job.seq) {
            job.last_event =
                dv_trace::record_event("serve.score_end", job.trace, job.last_event, 0);
        }
    });

    let mut jobs: Vec<Job> = shared.parked[slot].release_front(n);
    debug_assert_eq!(ctx.results.len(), n, "one result per staged image");
    shared.metrics.record_batch(n as u64);
    let width = ctx.batch_pl.len() / n;
    for (bi, mut job) in jobs.drain(..).enumerate() {
        let row = &ctx.batch_pl[bi * width..(bi + 1) * width];
        let (predicted, confidence) = ctx.results[bi];
        let joint: f32 = row.iter().sum();
        // Per-member finish: member `bi`'s response genuinely leaves after
        // the first `bi` promises are fulfilled, and the traced
        // enqueued→responded window includes that drain — a shared batch
        // timestamp would under-report wall time for later members.
        let finish = Instant::now();
        let total_us = finish.duration_since(job.submitted).as_micros() as u64;
        let deadline_met = finish <= job.deadline;
        shared.metrics.inc(names::SERVED_FULL);
        if !deadline_met {
            shared.metrics.inc(names::DEADLINE_MISSED);
        }
        shared.metrics.record_latency_us(total_us, job.trace.0);
        if shared.traced(job.seq) {
            job.last_event =
                dv_trace::record_event("serve.responded", job.trace, job.last_event, 0);
        }
        if let Some(b) = shared.breaker.as_ref() {
            if b.obs
                .try_push(Obs {
                    seq: job.seq,
                    joint,
                })
                .is_err()
            {
                shared.metrics.inc(names::DRIFT_OBS_DROPPED);
            }
        }
        job.promise.fulfill(Ok(ScoreResponse {
            predicted,
            confidence,
            per_layer: row.to_vec(),
            joint: Some(joint),
            via: ServedVia::FullJoint,
            queue_us: t0.duration_since(job.submitted).as_micros() as u64,
            total_us,
            deadline_met,
            worker: slot,
            seq: job.seq,
            trace: job.trace.0,
            batch: n,
        }));
    }
}

/// Serves one request through the single-image path, flagging the slot
/// as having a non-recoverable request in flight for the duration (a
/// panic in here is a terminal per-request crash — see `worker_body`).
fn serve_job(shared: &Arc<Shared>, slot: usize, job: Job, ctx: &mut WorkerCtx) {
    if shared.traced(job.seq) {
        // Stash the identity for crash attribution: if this request
        // panics the worker, `worker_body` records `serve.crashed` on
        // its timeline from here (the job itself is gone by then).
        shared.inflight_trace[slot].store(job.trace.0, Ordering::SeqCst);
        shared.inflight_parent[slot].store(job.last_event.0, Ordering::SeqCst);
    }
    shared.single_in_flight[slot].store(true, Ordering::SeqCst);
    serve_single(shared, slot, job, ctx);
    shared.single_in_flight[slot].store(false, Ordering::SeqCst);
    shared.inflight_trace[slot].store(0, Ordering::SeqCst);
    shared.inflight_parent[slot].store(0, Ordering::SeqCst);
}

fn serve_single(shared: &Arc<Shared>, slot: usize, job: Job, ctx: &mut WorkerCtx) {
    let Job {
        image,
        promise,
        submitted,
        deadline,
        seq,
        submitted_ns,
        trace,
        mut last_event,
    } = job;
    let picked = Instant::now();
    let queue_us = picked.duration_since(submitted).as_micros() as u64;
    // Deterministic 1-in-N trace sampling (`DV_TRACE_SAMPLE`), keyed on
    // the request sequence number so the sampled set is reproducible
    // regardless of worker interleaving. Telemetry (metrics, drift
    // observations) is never sampled — only spans.
    let _sample =
        dv_trace::sample_scope(shared.trace_sample <= 1 || seq % shared.trace_sample == 0);
    // Request lifecycle on the trace timeline: the queue wait as a
    // retroactive span (submission to pick-up), then everything from
    // pick-up to fulfilment — including a crash unwinding through the
    // guard — under one `serve.request` span.
    if dv_trace::tracing_enabled() {
        dv_trace::record_raw("serve.queued", submitted_ns, dv_trace::now_ns());
    }
    dv_trace::span!("serve.request");

    if shared.shedding.load(Ordering::SeqCst) {
        shared.metrics.inc(names::SHED_SHUTDOWN);
        promise.fulfill(Err(ScoreError::Shutdown));
        return;
    }

    #[cfg(feature = "fault-inject")]
    if let Some(faults) = &shared.cfg.faults {
        if faults.spike_hits(seq) {
            std::thread::sleep(faults.spike);
        }
    }

    let now = Instant::now();
    if now >= deadline {
        shared.metrics.inc(names::EXPIRED);
        promise.fulfill(Err(ScoreError::DeadlineExpired));
        return;
    }

    #[cfg(feature = "fault-inject")]
    if let Some(faults) = &shared.cfg.faults {
        if faults.panic_hits(seq) {
            // The unwind drops `promise`, so exactly this request's
            // ticket observes the crash; worker_body catches the unwind
            // and leaves the crash stamp for the respawn.
            panic!("injected fault: worker panic on request {seq}");
        }
    }

    let remaining_us = deadline.saturating_duration_since(now).as_micros() as u64;
    let mut via = match pick_rung(remaining_us, &ctx.est, !ctx.reduced_keep.is_empty()) {
        Rung::Full => ServedVia::FullJoint,
        Rung::Reduced => ServedVia::ReducedTaps {
            validated: ctx.reduced_keep.len(),
        },
        Rung::Confidence => ServedVia::ConfidenceOnly,
    };

    // An open drift breaker overrides the deadline ladder: the stream no
    // longer matches the calibration reference, so serve degraded —
    // except deterministic probe requests, which keep their ladder rung
    // so the monitor can observe recovery through them.
    if let Some(b) = shared.breaker.as_ref() {
        if b.open.load(Ordering::SeqCst) {
            let probe = b.cfg.probe_every > 0 && seq % b.cfg.probe_every == 0;
            if !probe {
                via = ServedVia::DriftDegraded;
            }
        }
    }

    if shared.traced(seq) {
        if via != ServedVia::FullJoint {
            last_event = dv_trace::record_event("serve.degraded", trace, last_event, via.code());
        }
        last_event = dv_trace::record_event("serve.score_begin", trace, last_event, via.code());
    }
    let t_score = Instant::now();
    let scored =
        match via {
            ServedVia::FullJoint => {
                shared
                    .validator
                    .score_into(&shared.plan, &image, &mut ctx.sw, &mut ctx.per_layer)
            }
            ServedVia::ReducedTaps { .. } => shared.validator.score_masked_into(
                &shared.plan,
                &image,
                &ctx.reduced_keep,
                &mut ctx.sw,
                &mut ctx.per_layer,
            ),
            ServedVia::ConfidenceOnly | ServedVia::DriftDegraded => shared
                .validator
                .score_masked_into(&shared.plan, &image, &[], &mut ctx.sw, &mut ctx.per_layer),
        };
    if shared.traced(seq) {
        last_event = dv_trace::record_event("serve.score_end", trace, last_event, 0);
    }

    match scored {
        Ok((predicted, confidence)) => {
            // Keep the ladder honest: fold each observed scoring time
            // into the rung's running estimate.
            let scoring_us = t_score.elapsed().as_micros() as u64;
            match via {
                ServedVia::FullJoint => refine_estimate(&mut ctx.est.full_us, scoring_us),
                ServedVia::ReducedTaps { .. } => {
                    refine_estimate(&mut ctx.est.reduced_us, scoring_us);
                }
                _ => {}
            }
            let finish = Instant::now();
            let total_us = finish.duration_since(submitted).as_micros() as u64;
            let deadline_met = finish <= deadline;
            let served = match via {
                ServedVia::FullJoint => names::SERVED_FULL,
                ServedVia::ReducedTaps { .. } => names::SERVED_REDUCED,
                ServedVia::ConfidenceOnly => names::SERVED_CONFIDENCE,
                ServedVia::DriftDegraded => names::SERVED_DRIFT_DEGRADED,
            };
            shared.metrics.inc(served);
            if !deadline_met {
                shared.metrics.inc(names::DEADLINE_MISSED);
            }
            shared.metrics.record_latency_us(total_us, trace.0);
            if shared.traced(seq) {
                dv_trace::record_event("serve.responded", trace, last_event, 0);
            }
            let joint = match via {
                ServedVia::FullJoint => Some(ctx.per_layer.iter().sum()),
                _ => None,
            };
            // Every full-joint score feeds the drift monitor (including
            // probes while the breaker is open).
            if let (Some(j), Some(b)) = (joint, shared.breaker.as_ref()) {
                if b.obs.try_push(Obs { seq, joint: j }).is_err() {
                    shared.metrics.inc(names::DRIFT_OBS_DROPPED);
                }
            }
            promise.fulfill(Ok(ScoreResponse {
                predicted,
                confidence,
                per_layer: ctx.per_layer.clone(),
                joint,
                via,
                queue_us,
                total_us,
                deadline_met,
                worker: slot,
                seq,
                trace: trace.0,
                batch: 1,
            }));
        }
        Err(e) => {
            if matches!(e, ScoreError::BadInput(_)) {
                shared.metrics.inc(names::BAD_INPUT);
            }
            promise.fulfill(Err(e));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_picks_the_richest_affordable_rung() {
        let est = RungEstimates {
            full_us: 100,
            reduced_us: 20,
            batch_item_us: 40,
        };
        assert_eq!(pick_rung(1_000, &est, true), Rung::Full);
        assert_eq!(pick_rung(200, &est, true), Rung::Full);
        assert_eq!(pick_rung(199, &est, true), Rung::Reduced);
        assert_eq!(pick_rung(40, &est, true), Rung::Reduced);
        assert_eq!(pick_rung(39, &est, true), Rung::Confidence);
        assert_eq!(pick_rung(0, &est, true), Rung::Confidence);
    }

    #[test]
    fn disabled_reduced_rung_degrades_straight_to_confidence() {
        let est = RungEstimates {
            full_us: 100,
            reduced_us: 0,
            batch_item_us: 100,
        };
        assert_eq!(pick_rung(199, &est, false), Rung::Confidence);
        assert_eq!(pick_rung(200, &est, false), Rung::Full);
    }

    #[test]
    fn estimate_refinement_converges_and_never_hits_zero() {
        let mut est = 1_000u64;
        for _ in 0..40 {
            refine_estimate(&mut est, 100);
        }
        assert!((100..=105).contains(&est), "{est}");
        let mut tiny = 1u64;
        refine_estimate(&mut tiny, 0);
        assert_eq!(tiny, 1, "estimates stay strictly positive");
        let mut upward = 10u64;
        for _ in 0..40 {
            refine_estimate(&mut upward, 500);
        }
        assert!((495..=505).contains(&upward), "{upward}");
    }

    /// Regression for the seed benchmark's non-monotonic deadline sweep
    /// (750µs served 82 full-rung responses but 1000µs only 56). The
    /// ladder itself, under *fixed* rung estimates, is monotone in the
    /// deadline: a simulated single worker draining a fixed burst never
    /// serves fewer full responses at a longer deadline. The inversion
    /// in the seed came from each sweep point re-warming its own
    /// incarnation — min-of-3 warmup variance could hand the 1000µs
    /// point a pessimistic `full_us`, and a one-shot estimate never
    /// recovered. The fix is `refine_estimate`: every observed scoring
    /// duration folds into the estimate, so a noisy warmup washes out
    /// within a few requests instead of steering a whole sweep point.
    #[test]
    fn deadline_sweep_is_monotone_under_fixed_estimates() {
        fn fulls_served(deadline_us: u64) -> usize {
            let est = RungEstimates {
                full_us: 100,
                reduced_us: 20,
                batch_item_us: 40,
            };
            // True service costs sit slightly above the estimates, as
            // they do live (the estimate is a min over warmup reps).
            let (full_cost, reduced_cost, conf_cost) = (110u64, 25u64, 6u64);
            let mut t = 0u64; // the whole burst is submitted at t = 0
            let mut fulls = 0usize;
            for _ in 0..100 {
                if t >= deadline_us {
                    // Expired before pick-up: terminal, near-zero cost.
                    t += 1;
                    continue;
                }
                match pick_rung(deadline_us - t, &est, true) {
                    Rung::Full => {
                        fulls += 1;
                        t += full_cost;
                    }
                    Rung::Reduced => t += reduced_cost,
                    Rung::Confidence => t += conf_cost,
                }
            }
            fulls
        }
        let sweep = [100u64, 200, 300, 500, 750, 1_000, 2_500, 5_000, 20_000];
        let fulls: Vec<usize> = sweep.iter().map(|&d| fulls_served(d)).collect();
        for (i, w) in fulls.windows(2).enumerate() {
            assert!(
                w[0] <= w[1],
                "full-rung count regressed from {} to {} between deadlines {}µs and {}µs \
                 (sweep: {fulls:?})",
                w[0],
                w[1],
                sweep[i],
                sweep[i + 1],
            );
        }
        assert!(
            fulls.last().copied().unwrap_or(0) == 100,
            "a generous deadline must serve the whole burst full: {fulls:?}"
        );
    }
}
