//! The serving frontend: pinned workers over a bounded queue, with
//! deadline-driven degradation, panic isolation, and supervised respawn.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dv_core::{DeepValidator, ScoreError, ScoreWorkspace};
use dv_drift::{DriftEvent, DriftMonitor};
use dv_nn::InferencePlan;
use dv_runtime::{oneshot, BoundedQueue, Crew, Popped, Promise, PushRejected};
use dv_tensor::Tensor;

use crate::config::{BreakerConfig, ServeConfig, ShutdownPolicy};
use crate::metrics::{names, Metrics, MetricsSnapshot};
use crate::response::{Outcome, Pending, Rejected, ScoreResponse, ServedVia};

/// How often an idle worker re-checks the queue for shutdown.
const POP_TICK: Duration = Duration::from_millis(5);

/// How often the monitor reaps and respawns crashed workers.
const SUPERVISE_TICK: Duration = Duration::from_millis(1);

/// Safety factor between the remaining deadline budget and a rung's
/// warmup-measured cost: a rung is only chosen when the budget is at
/// least twice its estimate, so normal jitter does not turn a chosen
/// rung into a deadline miss.
const RUNG_MARGIN: u64 = 2;

/// One queued scoring request. Dropping a `Job` without fulfilling its
/// promise breaks the caller's ticket — which is exactly what makes an
/// unwinding worker surface as [`ScoreError::WorkerCrashed`] instead of
/// a hang.
struct Job {
    image: Tensor,
    promise: Promise<Outcome>,
    submitted: Instant,
    deadline: Instant,
    seq: u64,
    /// Submission time on the trace epoch, for the `serve.queued` span
    /// (0 when tracing is compiled out).
    submitted_ns: u64,
}

/// One worker→monitor drift observation: a full-joint score's joint
/// discrepancy tagged with its request sequence number, so the monitor
/// can ingest in sequence order regardless of worker interleaving.
#[derive(Clone, Copy)]
struct Obs {
    seq: u64,
    joint: f32,
}

/// Breaker state shared between the workers (producers, plus readers of
/// the open flag) and the supervision thread (the only consumer, which
/// owns the actual [`DriftMonitor`]).
struct BreakerShared {
    cfg: BreakerConfig,
    /// Worker→monitor observation queue; overflow drops (counted),
    /// never blocks the scoring path.
    obs: BoundedQueue<Obs>,
    /// True while a drift alert is latched: serve degraded.
    open: AtomicBool,
}

struct Shared {
    validator: Arc<DeepValidator>,
    plan: Arc<InferencePlan>,
    cfg: ServeConfig,
    queue: BoundedQueue<Job>,
    metrics: Metrics,
    /// Present when [`ServeConfig::breaker`] was set.
    breaker: Option<BreakerShared>,
    /// Record spans for every `trace_sample`-th request (1 = all); from
    /// `DV_TRACE_SAMPLE`, cached at server start.
    trace_sample: u64,
    start: Instant,
    /// Cleared at the start of shutdown: submissions are refused.
    accepting: AtomicBool,
    /// Set during a [`ShutdownPolicy::Shed`] drain: popped jobs are
    /// failed with [`ScoreError::Shutdown`] instead of served.
    shedding: AtomicBool,
    /// Tells the monitor loop to exit.
    stop_monitor: AtomicBool,
    /// Monotone request sequence numbers (also the fault-injection key).
    seq: AtomicU64,
    /// Per-slot crash timestamps (µs since server start, 0 = none):
    /// written when an incarnation unwinds, consumed by the respawned
    /// incarnation to report its crash-to-recovered interval.
    crash_stamp_us: Vec<AtomicU64>,
}

impl Shared {
    fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

/// Warmup-measured per-rung cost estimates for one worker incarnation.
struct RungEstimates {
    full_us: u64,
    reduced_us: u64,
}

/// The degradation ladder's decision: richest rung whose estimated cost,
/// padded by [`RUNG_MARGIN`], fits the remaining deadline budget.
/// Confidence-only is the unconditional floor — any request that has not
/// already expired gets at least a prediction.
fn pick_rung(remaining_us: u64, est: &RungEstimates, reduced_enabled: bool) -> Rung {
    if remaining_us >= est.full_us.saturating_mul(RUNG_MARGIN) {
        Rung::Full
    } else if reduced_enabled && remaining_us >= est.reduced_us.saturating_mul(RUNG_MARGIN) {
        Rung::Reduced
    } else {
        Rung::Confidence
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rung {
    Full,
    Reduced,
    Confidence,
}

/// A running scoring server. Dropping it without
/// [`shutdown`](Server::shutdown) sheds the backlog and joins the
/// workers, so no request is ever left hanging.
pub struct Server {
    shared: Arc<Shared>,
    workers: Crew,
    monitor: Crew,
    finished: bool,
}

impl Server {
    /// Spawns the worker and monitor threads and starts serving.
    ///
    /// The validator and plan are shared immutably with every worker;
    /// each worker incarnation builds and warms its own
    /// [`ScoreWorkspace`], so nothing mutable is shared on the scoring
    /// path.
    pub fn start(
        validator: Arc<DeepValidator>,
        plan: Arc<InferencePlan>,
        cfg: ServeConfig,
    ) -> Self {
        let workers = cfg.workers.max(1);
        let breaker = cfg.breaker.clone().map(|bc| BreakerShared {
            obs: BoundedQueue::bounded(bc.obs_capacity.max(1)),
            open: AtomicBool::new(false),
            cfg: bc,
        });
        let shared = Arc::new(Shared {
            queue: BoundedQueue::bounded(cfg.queue_capacity),
            metrics: Metrics::new(),
            breaker,
            trace_sample: dv_runtime::config::trace_sample_every(),
            start: Instant::now(),
            accepting: AtomicBool::new(true),
            shedding: AtomicBool::new(false),
            stop_monitor: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            crash_stamp_us: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            validator,
            plan,
            cfg,
        });

        let shared_w = Arc::clone(&shared);
        let crew = Crew::spawn("dv-serve-worker", workers, move |slot| {
            worker_body(&shared_w, slot);
        });

        let shared_m = Arc::clone(&shared);
        let crew_m = crew.clone();
        let monitor = Crew::spawn("dv-serve-monitor", 1, move |_slot| {
            // Per-incarnation drift state: a respawned monitor starts a
            // fresh calibration, but the breaker's open flag lives in
            // Shared, so an already-open breaker stays open until the
            // new monitor calibrates and observes recovery.
            let mut drift = shared_m
                .breaker
                .as_ref()
                .map(|b| DriftMonitor::new(b.cfg.drift));
            let mut batch: Vec<Obs> = Vec::new();
            while !shared_m.stop_monitor.load(Ordering::SeqCst) {
                crew_m.supervise();
                ingest_drift_obs(&shared_m, drift.as_mut(), &mut batch);
                std::thread::sleep(SUPERVISE_TICK);
            }
            // Final drain so observations pushed just before shutdown
            // still reach the published gauges.
            ingest_drift_obs(&shared_m, drift.as_mut(), &mut batch);
        });

        Self {
            shared,
            workers: crew,
            monitor,
            finished: false,
        }
    }

    /// Submits an image for scoring without ever blocking.
    ///
    /// # Errors
    ///
    /// Returns [`Rejected::QueueFull`] under backpressure and
    /// [`Rejected::ShuttingDown`] once shutdown began; in both cases the
    /// image is dropped and nothing was enqueued.
    pub fn try_submit(&self, image: Tensor) -> Result<Pending, Rejected> {
        if !self.shared.accepting.load(Ordering::SeqCst) {
            self.shared.metrics.inc(names::REJECTED_SHUTDOWN);
            return Err(Rejected::ShuttingDown);
        }
        let seq = self.shared.seq.fetch_add(1, Ordering::SeqCst);
        let now = Instant::now();
        let (promise, ticket) = oneshot();
        let job = Job {
            image,
            promise,
            submitted: now,
            deadline: now + self.shared.cfg.deadline,
            seq,
            submitted_ns: if dv_trace::tracing_enabled() {
                dv_trace::now_ns()
            } else {
                0
            },
        };
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                self.shared.metrics.inc(names::SUBMITTED);
                Ok(Pending { ticket })
            }
            Err(PushRejected::Full(job)) => {
                drop(job);
                self.shared.metrics.inc(names::REJECTED_QUEUE_FULL);
                Err(Rejected::QueueFull)
            }
            Err(PushRejected::Closed(job)) => {
                drop(job);
                self.shared.metrics.inc(names::REJECTED_SHUTDOWN);
                Err(Rejected::ShuttingDown)
            }
        }
    }

    /// Current submission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// A point-in-time copy of the serving counters and latency
    /// quantiles.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(self.workers.respawns())
    }

    /// The server's metric registry as flat JSON (counters plus latency
    /// histogram quantiles), for dumping alongside trace exports.
    pub fn metrics_json(&self) -> String {
        dv_trace::metrics_json(self.shared.metrics.registry())
    }

    /// Shuts down cooperatively per the configured [`ShutdownPolicy`]
    /// and returns the final metrics. Every accepted request reaches a
    /// terminal outcome before this returns.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.finish();
        self.shared.metrics.snapshot(self.workers.respawns())
    }

    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.shared.accepting.store(false, Ordering::SeqCst);
        // Stop supervision before closing the queue: workers exiting
        // normally on queue-close must not be resurrected.
        self.shared.stop_monitor.store(true, Ordering::SeqCst);
        self.monitor.stop();
        self.monitor.join();
        self.workers.stop();
        let shed = self.shared.cfg.shutdown == ShutdownPolicy::Shed;
        if shed {
            self.shared.shedding.store(true, Ordering::SeqCst);
        }
        self.shared.queue.close();
        if shed {
            self.shed_backlog();
        }
        self.workers.join();
        // Pathological safety net: if every worker crashed mid-drain
        // with supervision already stopped, jobs may remain; fail them
        // rather than leave tickets hanging.
        self.shed_backlog();
    }

    fn shed_backlog(&self) {
        while let Popped::Item(job) = self.shared.queue.try_pop() {
            self.shared.metrics.inc(names::SHED_SHUTDOWN);
            job.promise.fulfill(Err(ScoreError::Shutdown));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Drains the worker→monitor observation queue into the drift monitor,
/// flips the breaker on latched events, and republishes the drift
/// gauges. Workers race on the queue, so each batch is sorted by
/// sequence number before ingestion — the monitor stays a pure function
/// of the observation sequence.
fn ingest_drift_obs(shared: &Arc<Shared>, drift: Option<&mut DriftMonitor>, batch: &mut Vec<Obs>) {
    let (Some(b), Some(mon)) = (shared.breaker.as_ref(), drift) else {
        return;
    };
    batch.clear();
    while let Popped::Item(o) = b.obs.try_pop() {
        batch.push(o);
    }
    if batch.is_empty() {
        return;
    }
    batch.sort_by_key(|o| o.seq);
    for o in batch.drain(..) {
        match mon.observe(o.joint, &[]) {
            Some(DriftEvent::Raised(_)) => {
                b.open.store(true, Ordering::SeqCst);
                shared.metrics.inc(names::BREAKER_OPENED);
            }
            Some(DriftEvent::Cleared(_)) => {
                b.open.store(false, Ordering::SeqCst);
                shared.metrics.inc(names::BREAKER_CLOSED);
            }
            None => {}
        }
    }
    mon.publish(shared.metrics.registry());
}

/// One worker incarnation: warm up, report recovery if this is a
/// respawn, then serve until the queue closes. A panic anywhere inside
/// unwinds through the in-flight job (breaking exactly that request's
/// promise), is caught here, and leaves a crash stamp for the next
/// incarnation.
fn worker_body(shared: &Arc<Shared>, slot: usize) {
    let crashed = catch_unwind(AssertUnwindSafe(|| worker_loop(shared, slot))).is_err();
    if crashed {
        shared.metrics.inc(names::WORKER_CRASHES);
        shared.crash_stamp_us[slot].store(shared.elapsed_us().max(1), Ordering::SeqCst);
    }
}

fn worker_loop(shared: &Arc<Shared>, slot: usize) {
    // Per-incarnation state: a fresh workspace (so a respawn can never
    // see a crashed predecessor's buffers) warmed on a dummy input, plus
    // the rung cost estimates the degradation ladder consults.
    let mut sw = ScoreWorkspace::new();
    let mut per_layer: Vec<f32> = Vec::new();
    let reduced_keep = reduced_keep_list(shared);
    let est = warm_up(shared, &reduced_keep, &mut sw, &mut per_layer);

    // If the previous incarnation of this slot crashed, the gap from its
    // crash to now (respawned, warmed, ready) is the recovery time.
    let stamp = shared.crash_stamp_us[slot].swap(0, Ordering::SeqCst);
    if stamp != 0 {
        shared
            .metrics
            .record_recovery(shared.elapsed_us().saturating_sub(stamp));
    }

    loop {
        match shared.queue.pop_timeout(POP_TICK) {
            Popped::Item(job) => {
                serve_job(
                    shared,
                    slot,
                    job,
                    &reduced_keep,
                    &est,
                    &mut sw,
                    &mut per_layer,
                );
            }
            Popped::Empty => {}
            Popped::Closed => return,
        }
    }
}

/// The trailing validated-probe positions the reduced rung keeps, or an
/// empty list when the middle rung is disabled (no taps configured, or
/// it would not actually be cheaper than full scoring).
fn reduced_keep_list(shared: &Arc<Shared>) -> Vec<usize> {
    let total = shared.validator.num_validated_layers();
    let keep = shared.cfg.reduced_taps.min(total);
    if keep == 0 || keep >= total {
        return Vec::new();
    }
    (total - keep..total).collect()
}

/// Scores a zeros-image through every rung a couple of times: grows the
/// workspace to its steady allocation-free size and measures per-rung
/// cost (min over reps, so a cold first pass does not inflate the
/// estimate).
fn warm_up(
    shared: &Arc<Shared>,
    reduced_keep: &[usize],
    sw: &mut ScoreWorkspace,
    per_layer: &mut Vec<f32>,
) -> RungEstimates {
    const REPS: usize = 3;
    dv_trace::span!("serve.warmup");
    let dummy = Tensor::zeros(shared.plan.input_dims());
    let mut full_us = u64::MAX;
    let mut reduced_us = u64::MAX;
    for _ in 0..REPS {
        let t0 = Instant::now();
        shared
            .validator
            .score_into(&shared.plan, &dummy, sw, per_layer)
            .expect("zeros warmup image always matches the plan input");
        full_us = full_us.min(t0.elapsed().as_micros() as u64);
        if !reduced_keep.is_empty() {
            let t0 = Instant::now();
            shared
                .validator
                .score_masked_into(&shared.plan, &dummy, reduced_keep, sw, per_layer)
                .expect("zeros warmup image always matches the plan input");
            reduced_us = reduced_us.min(t0.elapsed().as_micros() as u64);
        }
        // Confidence-only rung: warmed implicitly (it is masked scoring
        // with an empty keep list), and always affordable by definition.
        shared
            .validator
            .score_masked_into(&shared.plan, &dummy, &[], sw, per_layer)
            .expect("zeros warmup image always matches the plan input");
    }
    RungEstimates {
        full_us,
        reduced_us: if reduced_keep.is_empty() {
            0
        } else {
            reduced_us
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_job(
    shared: &Arc<Shared>,
    slot: usize,
    job: Job,
    reduced_keep: &[usize],
    est: &RungEstimates,
    sw: &mut ScoreWorkspace,
    per_layer: &mut Vec<f32>,
) {
    let Job {
        image,
        promise,
        submitted,
        deadline,
        seq,
        submitted_ns,
    } = job;
    let picked = Instant::now();
    let queue_us = picked.duration_since(submitted).as_micros() as u64;
    // Deterministic 1-in-N trace sampling (`DV_TRACE_SAMPLE`), keyed on
    // the request sequence number so the sampled set is reproducible
    // regardless of worker interleaving. Telemetry (metrics, drift
    // observations) is never sampled — only spans.
    let _sample =
        dv_trace::sample_scope(shared.trace_sample <= 1 || seq % shared.trace_sample == 0);
    // Request lifecycle on the trace timeline: the queue wait as a
    // retroactive span (submission to pick-up), then everything from
    // pick-up to fulfilment — including a crash unwinding through the
    // guard — under one `serve.request` span.
    if dv_trace::tracing_enabled() {
        dv_trace::record_raw("serve.queued", submitted_ns, dv_trace::now_ns());
    }
    dv_trace::span!("serve.request");

    if shared.shedding.load(Ordering::SeqCst) {
        shared.metrics.inc(names::SHED_SHUTDOWN);
        promise.fulfill(Err(ScoreError::Shutdown));
        return;
    }

    #[cfg(feature = "fault-inject")]
    if let Some(faults) = &shared.cfg.faults {
        if faults.spike_hits(seq) {
            std::thread::sleep(faults.spike);
        }
    }

    let now = Instant::now();
    if now >= deadline {
        shared.metrics.inc(names::EXPIRED);
        promise.fulfill(Err(ScoreError::DeadlineExpired));
        return;
    }

    #[cfg(feature = "fault-inject")]
    if let Some(faults) = &shared.cfg.faults {
        if faults.panic_hits(seq) {
            // The unwind drops `promise`, so exactly this request's
            // ticket observes the crash; worker_body catches the unwind
            // and leaves the crash stamp for the respawn.
            panic!("injected fault: worker panic on request {seq}");
        }
    }

    let remaining_us = deadline.saturating_duration_since(now).as_micros() as u64;
    let mut via = match pick_rung(remaining_us, est, !reduced_keep.is_empty()) {
        Rung::Full => ServedVia::FullJoint,
        Rung::Reduced => ServedVia::ReducedTaps {
            validated: reduced_keep.len(),
        },
        Rung::Confidence => ServedVia::ConfidenceOnly,
    };

    // An open drift breaker overrides the deadline ladder: the stream no
    // longer matches the calibration reference, so serve degraded —
    // except deterministic probe requests, which keep their ladder rung
    // so the monitor can observe recovery through them.
    if let Some(b) = shared.breaker.as_ref() {
        if b.open.load(Ordering::SeqCst) {
            let probe = b.cfg.probe_every > 0 && seq % b.cfg.probe_every == 0;
            if !probe {
                via = ServedVia::DriftDegraded;
            }
        }
    }

    let scored = match via {
        ServedVia::FullJoint => shared
            .validator
            .score_into(&shared.plan, &image, sw, per_layer),
        ServedVia::ReducedTaps { .. } => {
            shared
                .validator
                .score_masked_into(&shared.plan, &image, reduced_keep, sw, per_layer)
        }
        ServedVia::ConfidenceOnly | ServedVia::DriftDegraded => {
            shared
                .validator
                .score_masked_into(&shared.plan, &image, &[], sw, per_layer)
        }
    };

    match scored {
        Ok((predicted, confidence)) => {
            let finish = Instant::now();
            let total_us = finish.duration_since(submitted).as_micros() as u64;
            let deadline_met = finish <= deadline;
            let served = match via {
                ServedVia::FullJoint => names::SERVED_FULL,
                ServedVia::ReducedTaps { .. } => names::SERVED_REDUCED,
                ServedVia::ConfidenceOnly => names::SERVED_CONFIDENCE,
                ServedVia::DriftDegraded => names::SERVED_DRIFT_DEGRADED,
            };
            shared.metrics.inc(served);
            if !deadline_met {
                shared.metrics.inc(names::DEADLINE_MISSED);
            }
            shared.metrics.record_latency_us(total_us);
            let joint = match via {
                ServedVia::FullJoint => Some(per_layer.iter().sum()),
                _ => None,
            };
            // Every full-joint score feeds the drift monitor (including
            // probes while the breaker is open).
            if let (Some(j), Some(b)) = (joint, shared.breaker.as_ref()) {
                if b.obs.try_push(Obs { seq, joint: j }).is_err() {
                    shared.metrics.inc(names::DRIFT_OBS_DROPPED);
                }
            }
            promise.fulfill(Ok(ScoreResponse {
                predicted,
                confidence,
                per_layer: per_layer.clone(),
                joint,
                via,
                queue_us,
                total_us,
                deadline_met,
                worker: slot,
                seq,
            }));
        }
        Err(e) => {
            if matches!(e, ScoreError::BadInput(_)) {
                shared.metrics.inc(names::BAD_INPUT);
            }
            promise.fulfill(Err(e));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_picks_the_richest_affordable_rung() {
        let est = RungEstimates {
            full_us: 100,
            reduced_us: 20,
        };
        assert_eq!(pick_rung(1_000, &est, true), Rung::Full);
        assert_eq!(pick_rung(200, &est, true), Rung::Full);
        assert_eq!(pick_rung(199, &est, true), Rung::Reduced);
        assert_eq!(pick_rung(40, &est, true), Rung::Reduced);
        assert_eq!(pick_rung(39, &est, true), Rung::Confidence);
        assert_eq!(pick_rung(0, &est, true), Rung::Confidence);
    }

    #[test]
    fn disabled_reduced_rung_degrades_straight_to_confidence() {
        let est = RungEstimates {
            full_us: 100,
            reduced_us: 0,
        };
        assert_eq!(pick_rung(199, &est, false), Rung::Confidence);
        assert_eq!(pick_rung(200, &est, false), Rung::Full);
    }
}
