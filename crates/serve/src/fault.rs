//! Deterministic fault injection (feature `fault-inject`).
//!
//! The schedule is a pure function of `(seed, request sequence number)`
//! via [`dv_runtime::split_seed`], so a soak run is exactly reproducible:
//! the same seed injects the same panics and spikes at the same requests
//! regardless of worker count or scheduling. Two independent streams per
//! request (even/odd) keep the panic and spike decisions decorrelated.

use std::time::Duration;

/// A deterministic per-request fault schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Base seed for the per-request decision streams.
    pub seed: u64,
    /// Probability (per mille) that a request's worker panics mid-serve.
    pub panic_per_mille: u32,
    /// Probability (per mille) that a request suffers a latency spike.
    pub spike_per_mille: u32,
    /// Duration of an injected latency spike.
    pub spike: Duration,
}

impl FaultPlan {
    /// Does request `seq` trigger an injected worker panic?
    #[must_use]
    pub fn panic_hits(&self, seq: u64) -> bool {
        draw_per_mille(self.seed, 2 * seq) < self.panic_per_mille
    }

    /// Does request `seq` trigger an injected latency spike?
    #[must_use]
    pub fn spike_hits(&self, seq: u64) -> bool {
        draw_per_mille(self.seed, 2 * seq + 1) < self.spike_per_mille
    }
}

/// Uniform draw in `0..1000` for decision stream `stream`.
fn draw_per_mille(seed: u64, stream: u64) -> u32 {
    (dv_runtime::split_seed(seed, stream) % 1000) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(panic_pm: u32, spike_pm: u32) -> FaultPlan {
        FaultPlan {
            seed: 42,
            panic_per_mille: panic_pm,
            spike_per_mille: spike_pm,
            spike: Duration::from_millis(1),
        }
    }

    #[test]
    fn schedule_is_deterministic_and_rate_roughly_matches() {
        let p = plan(100, 50);
        let hits: usize = (0..10_000).filter(|&s| p.panic_hits(s)).count();
        // 10% nominal; the splitmix stream is uniform enough for 7%..13%.
        assert!((700..=1300).contains(&hits), "panic hits {hits}");
        let again: usize = (0..10_000).filter(|&s| p.panic_hits(s)).count();
        assert_eq!(hits, again);
    }

    #[test]
    fn zero_rate_never_fires_and_streams_are_independent() {
        let p = plan(0, 1000);
        assert!((0..1000).all(|s| !p.panic_hits(s)));
        assert!((0..1000).all(|s| p.spike_hits(s)));
    }
}
