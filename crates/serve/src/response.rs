//! Response types: what a served request reports back.

use std::time::Duration;

use dv_core::ScoreError;
use dv_runtime::Ticket;

/// Which rung of the degradation ladder produced a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedVia {
    /// Every validated layer was scored; `joint` is the paper's joint
    /// discrepancy.
    FullJoint,
    /// Only the last `validated` layers were scored (masked taps); the
    /// per-layer entries are bit-identical to full scoring's for those
    /// layers, but no joint sum is reported.
    ReducedTaps {
        /// How many trailing validated layers were scored.
        validated: usize,
    },
    /// No discrepancy was computed; only the classifier's prediction and
    /// softmax confidence are reported.
    ConfidenceOnly,
    /// The drift circuit breaker was open: the request was served
    /// confidence-only regardless of its deadline budget, because the
    /// discrepancy stream no longer matches the calibration reference
    /// and full scores would not be trustworthy. Deterministic probe
    /// requests (see
    /// [`BreakerConfig::probe_every`](crate::BreakerConfig::probe_every))
    /// still go through the full rung so the monitor can observe
    /// recovery.
    DriftDegraded,
}

impl ServedVia {
    /// A stable small-integer code for trace-event payloads
    /// (`serve.score_begin` / `serve.degraded` carry it as `arg`).
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            ServedVia::FullJoint => 0,
            ServedVia::ReducedTaps { .. } => 1,
            ServedVia::ConfidenceOnly => 2,
            ServedVia::DriftDegraded => 3,
        }
    }
}

/// A successfully served scoring request.
#[derive(Debug, Clone)]
pub struct ScoreResponse {
    /// The classifier's predicted class.
    pub predicted: usize,
    /// Max softmax probability of the prediction.
    pub confidence: f32,
    /// Per-layer discrepancies for the layers the rung scored (empty for
    /// [`ServedVia::ConfidenceOnly`]).
    pub per_layer: Vec<f32>,
    /// Joint discrepancy — `Some` only for [`ServedVia::FullJoint`],
    /// where it is the sum over every validated layer.
    pub joint: Option<f32>,
    /// Which degradation rung served this request.
    pub via: ServedVia,
    /// Time the request spent queued before a worker picked it up.
    pub queue_us: u64,
    /// Submission-to-response latency.
    pub total_us: u64,
    /// Whether the response was produced before the request's deadline.
    pub deadline_met: bool,
    /// Slot index of the worker that served the request.
    pub worker: usize,
    /// The request's submission sequence number (for correlating
    /// responses with submissions and fault schedules).
    pub seq: u64,
    /// The request's trace id (`seq + 1`), the key into the stitched
    /// lifecycle timelines ([`dv_trace::stitch`]) and the latency
    /// histogram's p99/p999 exemplars. Assigned whether or not tracing
    /// is compiled in, so responses correlate with traces when it is.
    pub trace: u64,
    /// Size of the coalesced batch this request was scored in (`1` for a
    /// request served on its own, whether because the queue was shallow
    /// or because it fell down the degrade ladder individually).
    pub batch: usize,
}

/// Terminal outcome of a submitted request: a response or a typed error.
pub type Outcome = Result<ScoreResponse, ScoreError>;

/// Why [`Server::try_submit`](crate::Server::try_submit) refused a
/// request (the image is dropped; nothing was enqueued).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The submission queue is at capacity — backpressure; retry no
    /// sooner than `retry_after` or shed upstream.
    QueueFull {
        /// Backpressure hint derived from the observed worker drain
        /// rate: roughly how long until one queue slot frees up. Feed it
        /// to [`RetryPolicy`](crate::RetryPolicy) as the `hint` — it is
        /// an estimate, not a reservation.
        retry_after: Duration,
    },
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
}

/// A submitted request's handle: redeem it for the terminal [`Outcome`].
///
/// Every accepted request reaches exactly one terminal outcome; if the
/// serving worker dies mid-request the broken promise surfaces here as
/// [`ScoreError::WorkerCrashed`] rather than a hang.
pub struct Pending {
    pub(crate) ticket: Ticket<Outcome>,
}

impl Pending {
    /// Blocks until the request reaches its terminal outcome.
    pub fn wait(self) -> Outcome {
        match self.ticket.wait() {
            Ok(outcome) => outcome,
            Err(_broken) => Err(ScoreError::WorkerCrashed),
        }
    }

    /// Waits up to `timeout`; on timeout the handle comes back so the
    /// response is never silently abandoned.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` if no outcome arrived within `timeout`.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Outcome, Self> {
        match self.ticket.wait_timeout(timeout) {
            Ok(Ok(outcome)) => Ok(outcome),
            Ok(Err(_broken)) => Ok(Err(ScoreError::WorkerCrashed)),
            Err(ticket) => Err(Self { ticket }),
        }
    }
}
