//! Server construction parameters.

use std::time::Duration;

use dv_drift::DriftConfig;

#[cfg(feature = "fault-inject")]
use crate::fault::FaultPlan;

/// Drift circuit-breaker configuration (see
/// [`ServeConfig::breaker`]).
///
/// Workers feed every full-joint score's joint discrepancy (tagged with
/// its request sequence number) to the supervision thread, which owns a
/// [`DriftMonitor`](dv_drift::DriftMonitor). A latched drift alert
/// *opens* the breaker: requests are served through the
/// [`ServedVia::DriftDegraded`](crate::ServedVia::DriftDegraded) rung —
/// except deterministic probes, which keep observing the stream — until
/// the alert clears and the breaker closes again.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Detector and hysteresis parameters for the attached monitor.
    pub drift: DriftConfig,
    /// While the breaker is open, every request whose sequence number is
    /// divisible by `probe_every` is still served through the full rung,
    /// so the monitor keeps seeing fresh joint discrepancies and can
    /// detect recovery. `0` disables probing (the breaker can then only
    /// reopen after shutdown; not recommended).
    pub probe_every: u64,
    /// Capacity of the worker→monitor observation queue. Overflow drops
    /// observations (counted in `serve.drift_obs_dropped`) rather than
    /// ever blocking the scoring path.
    pub obs_capacity: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            drift: DriftConfig::default(),
            probe_every: 4,
            obs_capacity: 1024,
        }
    }
}

/// What happens to requests still queued when the server shuts down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownPolicy {
    /// Workers finish every queued request before exiting (each still
    /// subject to its own deadline).
    Drain,
    /// Queued requests are failed immediately with
    /// [`ScoreError::Shutdown`](dv_core::ScoreError::Shutdown); only
    /// requests already being scored complete.
    Shed,
}

/// Configuration for [`Server::start`](crate::Server::start).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of pinned scoring workers.
    pub workers: usize,
    /// Capacity of the bounded submission queue; a full queue rejects
    /// with [`Rejected::QueueFull`](crate::Rejected::QueueFull).
    pub queue_capacity: usize,
    /// Per-request deadline, measured from submission. A request whose
    /// deadline passes before scoring begins fails with
    /// [`ScoreError::DeadlineExpired`](dv_core::ScoreError::DeadlineExpired);
    /// one picked up with a squeezed budget is served through a degraded
    /// rung instead.
    pub deadline: Duration,
    /// Largest number of queued requests one worker wakeup may coalesce
    /// into a single batched forward pass. Coalescing never waits for a
    /// batch to fill — a worker takes whatever depth the queue already
    /// holds (up to this cap), so an idle server still serves singles at
    /// single-request latency while a bursty one turns queue depth into
    /// batch size. `1` disables coalescing entirely.
    pub max_batch: usize,
    /// How shutdown treats the queue backlog.
    pub shutdown: ShutdownPolicy,
    /// How many trailing validated layers the reduced (masked-tap) rung
    /// keeps. `0` disables the middle rung, degrading straight to
    /// confidence-only.
    pub reduced_taps: usize,
    /// Optional drift circuit breaker over the joint discrepancy
    /// stream; `None` (the default) serves every request through the
    /// deadline ladder alone.
    pub breaker: Option<BreakerConfig>,
    /// Deterministic fault-injection schedule for tests and the
    /// `serve_soak` harness; `None` serves faithfully.
    #[cfg(feature = "fault-inject")]
    pub faults: Option<FaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            deadline: Duration::from_millis(50),
            max_batch: 8,
            shutdown: ShutdownPolicy::Drain,
            reduced_taps: 1,
            breaker: None,
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }
}
