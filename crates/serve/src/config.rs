//! Server construction parameters.

use std::time::Duration;

#[cfg(feature = "fault-inject")]
use crate::fault::FaultPlan;

/// What happens to requests still queued when the server shuts down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownPolicy {
    /// Workers finish every queued request before exiting (each still
    /// subject to its own deadline).
    Drain,
    /// Queued requests are failed immediately with
    /// [`ScoreError::Shutdown`](dv_core::ScoreError::Shutdown); only
    /// requests already being scored complete.
    Shed,
}

/// Configuration for [`Server::start`](crate::Server::start).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of pinned scoring workers.
    pub workers: usize,
    /// Capacity of the bounded submission queue; a full queue rejects
    /// with [`Rejected::QueueFull`](crate::Rejected::QueueFull).
    pub queue_capacity: usize,
    /// Per-request deadline, measured from submission. A request whose
    /// deadline passes before scoring begins fails with
    /// [`ScoreError::DeadlineExpired`](dv_core::ScoreError::DeadlineExpired);
    /// one picked up with a squeezed budget is served through a degraded
    /// rung instead.
    pub deadline: Duration,
    /// How shutdown treats the queue backlog.
    pub shutdown: ShutdownPolicy,
    /// How many trailing validated layers the reduced (masked-tap) rung
    /// keeps. `0` disables the middle rung, degrading straight to
    /// confidence-only.
    pub reduced_taps: usize,
    /// Deterministic fault-injection schedule for tests and the
    /// `serve_soak` harness; `None` serves faithfully.
    #[cfg(feature = "fault-inject")]
    pub faults: Option<FaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            deadline: Duration::from_millis(50),
            shutdown: ShutdownPolicy::Drain,
            reduced_taps: 1,
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }
}
