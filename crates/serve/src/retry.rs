//! Deterministic jittered backoff for callers bounced by backpressure.
//!
//! A [`Rejected::QueueFull`](crate::Rejected::QueueFull) carries a
//! `retry_after` hint derived from the server's observed drain rate;
//! [`RetryPolicy`] turns that hint into a full client-side schedule:
//! exponential growth per attempt, a deterministic ±25% jitter so a
//! thundering herd of rejected clients decorrelates without any shared
//! randomness, and a hard attempt cap after which the caller should shed
//! the request upstream. The schedule is a pure function of
//! `(seed, key, attempt)` — two clients with different keys spread out,
//! while one client replays identically run to run, which is what lets
//! the soak harness assert exact rejection counts.

use std::time::Duration;

use dv_runtime::split_seed;

/// Deterministic jittered-exponential backoff schedule.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Delay floor for the first attempt when the server supplied no
    /// hint (or a smaller one).
    pub base: Duration,
    /// Hard ceiling on any single delay, after growth and jitter.
    pub max_delay: Duration,
    /// Attempts allowed before [`delay`](RetryPolicy::delay) gives up
    /// (returns `None`). `0` means never retry.
    pub max_attempts: u32,
    /// Seed decorrelating this client's jitter from other clients'.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_micros(200),
            max_delay: Duration::from_millis(50),
            max_attempts: 8,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The pause before retry number `attempt` (0-based) of the request
    /// identified by `key`, or `None` once the attempt budget is spent.
    ///
    /// `hint` is the server's `retry_after` from the rejection being
    /// retried; the schedule starts from `max(hint, base)` and doubles
    /// per attempt, so a congested server's estimate is respected but
    /// never trusted below the configured floor. Jitter multiplies the
    /// delay by a deterministic factor in `[0.75, 1.25)` drawn from
    /// `(seed, key, attempt)`.
    #[must_use]
    pub fn delay(&self, key: u64, attempt: u32, hint: Option<Duration>) -> Option<Duration> {
        if attempt >= self.max_attempts {
            return None;
        }
        let floor = hint.map_or(self.base, |h| h.max(self.base));
        let grown = floor
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.max_delay);
        // Deterministic jitter in [0.75, 1.25): 768..1280 / 1024ths.
        let draw = split_seed(self.seed, (key << 8) | u64::from(attempt & 0xFF)) % 512;
        let num = 768 + draw;
        let jittered_us = (grown.as_micros() as u64).saturating_mul(num) / 1024;
        Some(Duration::from_micros(jittered_us.max(1)).min(self.max_delay))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_micros(100),
            max_delay: Duration::from_millis(10),
            max_attempts: 5,
            seed: 42,
        }
    }

    #[test]
    fn schedule_is_deterministic_per_key_and_attempt() {
        let p = policy();
        for attempt in 0..5 {
            assert_eq!(p.delay(7, attempt, None), p.delay(7, attempt, None));
        }
        // Different keys decorrelate: at least one attempt differs.
        let diverges = (0..5).any(|a| p.delay(7, a, None) != p.delay(8, a, None));
        assert!(diverges, "jitter failed to decorrelate distinct keys");
    }

    #[test]
    fn delays_grow_exponentially_until_the_cap() {
        let p = policy();
        let d0 = p.delay(1, 0, None).expect("attempt 0 is within budget");
        let d3 = p.delay(1, 3, None).expect("attempt 3 is within budget");
        // 8x growth dwarfs the ±25% jitter band.
        assert!(d3 > d0 * 4, "d0={d0:?} d3={d3:?}");
        let d_capped = p.delay(1, 4, None).expect("attempt 4 is within budget");
        assert!(d_capped <= p.max_delay);
    }

    #[test]
    fn server_hint_raises_the_floor_but_never_lowers_it() {
        let p = policy();
        let hinted = p
            .delay(3, 0, Some(Duration::from_millis(2)))
            .expect("attempt 0 is within budget");
        // 2ms hint with ±25% jitter stays well above the 100µs base.
        assert!(hinted >= Duration::from_micros(1500), "{hinted:?}");
        let tiny_hint = p
            .delay(3, 0, Some(Duration::from_nanos(1)))
            .expect("attempt 0 is within budget");
        assert!(tiny_hint >= Duration::from_micros(75), "{tiny_hint:?}");
    }

    #[test]
    fn attempt_budget_exhausts_to_none() {
        let p = policy();
        assert!(p.delay(0, 4, None).is_some());
        assert_eq!(p.delay(0, 5, None), None);
        let never = RetryPolicy {
            max_attempts: 0,
            ..policy()
        };
        assert_eq!(never.delay(0, 0, None), None);
    }

    #[test]
    fn jitter_stays_inside_its_band() {
        let p = policy();
        for key in 0..64 {
            let d = p.delay(key, 0, None).expect("attempt 0 is within budget");
            let us = d.as_micros() as u64;
            assert!((75..125).contains(&us), "key {key}: {us}µs outside band");
        }
    }
}
