//! End-to-end request-scoped tracing through a live server: responses
//! carry trace ids, lifecycle events stitch into cross-thread timelines,
//! and the stitched segments partition each served request's wall time.
//!
//! Kept in its own integration binary (= its own process): the
//! per-thread trace rings and the global sequence are process-wide, so
//! these assertions must not race the other serve suites' servers,
//! whose requests would collide on the same small trace ids.

use std::sync::Arc;
use std::time::Duration;

use dv_core::{DeepValidator, ValidatorConfig};
use dv_nn::layers::{Conv2d, Dense, Flatten, MaxPool2, Relu};
use dv_nn::optim::Adam;
use dv_nn::train::{fit, TrainConfig};
use dv_nn::{InferencePlan, Network};
use dv_runtime::Pool;
use dv_serve::{ServeConfig, ServedVia, Server, ShutdownPolicy};
use dv_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Same two-probe conv fixture as `serve_tests.rs` (seed 11).
fn trained_setup() -> (Arc<DeepValidator>, Arc<InferencePlan>, Vec<Tensor>) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut images = Vec::new();
    let mut labels = Vec::new();
    for i in 0..80 {
        let class = i % 2;
        let mut img = Tensor::zeros(&[1, 6, 6]);
        let cx = if class == 0 { 1 } else { 4 };
        for y in 0..6 {
            img.set(&[0, y, cx], rng.gen_range(0.7f32..1.0));
        }
        images.push(img);
        labels.push(class);
    }
    let mut net = Network::new(&[1, 6, 6]);
    net.push(Conv2d::new(&mut rng, 1, 3, 3))
        .push_probe(Relu::new())
        .push(MaxPool2::new())
        .push(Flatten::new())
        .push(Dense::new(&mut rng, 3 * 2 * 2, 8))
        .push_probe(Relu::new())
        .push(Dense::new(&mut rng, 8, 2));
    let mut opt = Adam::new(0.01);
    let cfg = TrainConfig {
        epochs: 8,
        batch_size: 16,
    };
    let validator = Pool::new(1).install(|| {
        fit(&mut net, &mut opt, &images, &labels, &cfg, &mut rng);
        DeepValidator::fit(&net, &images, &labels, &ValidatorConfig::default())
            .expect("validator fit failed")
    });
    let plan = net.plan();
    (Arc::new(validator), Arc::new(plan), images)
}

/// One test fn on purpose: the trace rings are global, so the identity
/// and stitching assertions must observe the same server without a
/// sibling test's requests interleaving.
#[test]
fn responses_carry_trace_ids_that_resolve_to_stitched_timelines() {
    let (validator, plan, images) = trained_setup();
    dv_trace::reset();
    let server = Server::start(
        validator,
        plan,
        ServeConfig {
            workers: 2,
            queue_capacity: 128,
            deadline: Duration::from_secs(5),
            max_batch: 8,
            shutdown: ShutdownPolicy::Drain,
            reduced_taps: 1,
            breaker: None,
            #[cfg(feature = "fault-inject")]
            faults: None,
        },
    );

    const N: usize = 30;
    let mut responses = Vec::new();
    for (i, img) in images.iter().take(N).enumerate() {
        let resp = server
            .try_submit(img.clone())
            .expect("serialized submissions never fill the queue")
            .wait()
            .expect("fault-free serving never fails");
        // The trace id is seq + 1, assigned with or without the trace
        // feature, so responses always correlate with exported traces.
        assert_eq!(resp.seq, i as u64);
        assert_eq!(resp.trace, resp.seq + 1, "trace id is seq + 1");
        responses.push(resp);
    }
    let p99_exemplar = server.latency_exemplar(0.99);
    let json = server.metrics_json();
    drop(server);

    // The new satellite metrics are registered (and therefore exported)
    // from the first request on.
    assert!(json.contains("\"serve.queue_depth\""), "{json}");
    assert!(json.contains("\"serve.coalesce_wait_us\""), "{json}");
    assert!(json.contains("\"p999\""), "{json}");

    // Exemplars ride the always-on histogram, so the p99 bucket points
    // at one of this run's requests in both feature modes.
    assert!(
        p99_exemplar >= 1 && p99_exemplar <= N as u64,
        "{p99_exemplar}"
    );

    if !dv_trace::tracing_enabled() {
        assert!(
            dv_trace::stitch(&dv_trace::snapshot()).is_empty(),
            "no lifecycle events without the trace feature"
        );
        return;
    }

    // With tracing on (and DV_TRACE_SAMPLE unset in CI), every request's
    // lifecycle stitches into a timeline whose segments telescope.
    let snap = dv_trace::snapshot();
    assert_eq!(snap.dropped, 0, "30 serialized requests never fill a ring");
    let timelines = dv_trace::stitch(&snap);
    let sampled_all = dv_runtime::config::trace_sample_every() <= 1;
    for resp in &responses {
        let Some(tl) = timelines.iter().find(|t| t.trace == resp.trace) else {
            assert!(
                !sampled_all,
                "sampled-in request {} has a timeline",
                resp.seq
            );
            continue;
        };
        assert!(
            tl.events.windows(2).all(|w| w[0].seq < w[1].seq),
            "stitched events are in global sequence order"
        );
        let seg = dv_trace::segments(tl).expect("served requests have complete timelines");
        assert_eq!(
            seg.queue_wait_ns + seg.coalesce_wait_ns + seg.score_ns + seg.respond_ns,
            seg.total_ns,
            "segments partition the request's wall time exactly"
        );
        if resp.via == ServedVia::FullJoint && resp.batch == 1 {
            let first = tl.first("serve.enqueued").expect("enqueue event");
            assert_eq!(first.parent, 0, "the enqueue event roots the chain");
        }
    }
    if sampled_all {
        // The p99 exemplar resolves to a full stitched timeline.
        assert!(timelines.iter().any(|t| t.trace == p99_exemplar));
    }
}
