//! Integration tests for the serving frontend, including the
//! property-style guarantees the issue demands: every submitted request
//! reaches exactly one terminal outcome under any fault schedule, and a
//! respawned worker scores bit-identically to the direct path.
//!
//! The trained fixture is the same seed-11 two-probe conv net as
//! `plan_equivalence.rs` / `workspace_reset.rs` in dv-core, so the
//! bit-identity assertions here compare against the exact tensors those
//! suites pin down.

use std::sync::Arc;
use std::time::Duration;

use dv_core::{BadInput, DeepValidator, ScoreError, ScoreWorkspace, ValidatorConfig};
use dv_drift::DriftConfig;
use dv_nn::layers::{Conv2d, Dense, Flatten, MaxPool2, Relu};
use dv_nn::optim::Adam;
use dv_nn::train::{fit, TrainConfig};
use dv_nn::{InferencePlan, Network};
use dv_runtime::Pool;
use dv_serve::{BreakerConfig, Rejected, ServeConfig, ServedVia, Server, ShutdownPolicy};
use dv_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[cfg(feature = "fault-inject")]
use dv_serve::FaultPlan;

/// Silence the panic spew from *injected* worker faults (they are the
/// point of these tests), while forwarding every other panic to the
/// default hook so genuine failures stay loud.
fn quiet_injected_panics() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Same two-probe conv fixture as dv-core's `plan_equivalence.rs`: a
/// 2-class stripe problem trained under a single-thread pool.
fn trained_setup() -> (Arc<DeepValidator>, Arc<InferencePlan>, Vec<Tensor>) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut images = Vec::new();
    let mut labels = Vec::new();
    for i in 0..80 {
        let class = i % 2;
        let mut img = Tensor::zeros(&[1, 6, 6]);
        let cx = if class == 0 { 1 } else { 4 };
        for y in 0..6 {
            img.set(&[0, y, cx], rng.gen_range(0.7f32..1.0));
        }
        images.push(img);
        labels.push(class);
    }
    let mut net = Network::new(&[1, 6, 6]);
    net.push(Conv2d::new(&mut rng, 1, 3, 3))
        .push_probe(Relu::new())
        .push(MaxPool2::new())
        .push(Flatten::new())
        .push(Dense::new(&mut rng, 3 * 2 * 2, 8))
        .push_probe(Relu::new())
        .push(Dense::new(&mut rng, 8, 2));
    let mut opt = Adam::new(0.01);
    let cfg = TrainConfig {
        epochs: 8,
        batch_size: 16,
    };
    let validator = Pool::new(1).install(|| {
        fit(&mut net, &mut opt, &images, &labels, &cfg, &mut rng);
        DeepValidator::fit(&net, &images, &labels, &ValidatorConfig::default())
            .expect("validator fit failed")
    });
    let plan = net.plan();
    (Arc::new(validator), Arc::new(plan), images)
}

/// Reference scoring through the direct (non-served) path.
fn direct(
    validator: &DeepValidator,
    plan: &InferencePlan,
    img: &Tensor,
) -> (usize, f32, Vec<f32>, f32) {
    let mut sw = ScoreWorkspace::new();
    let mut per_layer = Vec::new();
    let (predicted, confidence) = validator
        .score_into(plan, img, &mut sw, &mut per_layer)
        .expect("fixture images are well-formed");
    let joint = per_layer.iter().sum::<f32>();
    (predicted, confidence, per_layer, joint)
}

fn generous_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 128,
        deadline: Duration::from_secs(5),
        max_batch: 8,
        shutdown: ShutdownPolicy::Drain,
        reduced_taps: 1,
        breaker: None,
        #[cfg(feature = "fault-inject")]
        faults: None,
    }
}

/// With no faults and a generous deadline every request is served
/// through the full-joint rung, bit-identical to `score_into`.
#[test]
fn serving_without_faults_is_bit_identical() {
    quiet_injected_panics();
    let (validator, plan, images) = trained_setup();
    let server = Server::start(Arc::clone(&validator), Arc::clone(&plan), generous_cfg());

    let pendings: Vec<_> = images
        .iter()
        .map(|img| {
            server
                .try_submit(img.clone())
                .expect("128-slot queue holds the whole fixture set")
        })
        .collect();
    for (i, pending) in pendings.into_iter().enumerate() {
        let resp = pending.wait().expect("fault-free serving never fails");
        assert_eq!(resp.via, ServedVia::FullJoint, "request {i}");
        assert!(resp.deadline_met, "request {i} blew a 5s deadline");
        assert_eq!(resp.seq, i as u64);
        let (p, c, per_layer, joint) = direct(&validator, &plan, &images[i]);
        assert_eq!(resp.predicted, p, "request {i}");
        assert_eq!(resp.confidence.to_bits(), c.to_bits(), "request {i}");
        assert_eq!(resp.per_layer.len(), per_layer.len());
        for (a, b) in resp.per_layer.iter().zip(&per_layer) {
            assert_eq!(a.to_bits(), b.to_bits(), "request {i}");
        }
        let got_joint = resp.joint.expect("full rung reports the joint");
        assert_eq!(got_joint.to_bits(), joint.to_bits(), "request {i}");
    }

    let m = server.shutdown();
    assert_eq!(m.submitted, images.len() as u64);
    assert_eq!(m.served_full, images.len() as u64);
    assert_eq!(m.worker_crashes, 0);
    assert_eq!(m.worker_respawns, 0);
    assert_eq!(m.terminal_outcomes(), m.submitted);
}

/// A `Drain` shutdown finishes every request still queued; nothing is
/// shed and nothing hangs.
#[test]
fn drain_shutdown_serves_every_queued_request() {
    quiet_injected_panics();
    let (validator, plan, images) = trained_setup();
    let mut cfg = generous_cfg();
    cfg.workers = 1;
    let server = Server::start(validator, plan, cfg);

    let pendings: Vec<_> = images
        .iter()
        .take(30)
        .map(|img| {
            server
                .try_submit(img.clone())
                .expect("queue capacity exceeds the burst")
        })
        .collect();
    let m = server.shutdown();
    assert_eq!(m.submitted, 30);
    assert_eq!(m.served(), 30);
    assert_eq!(m.shed_shutdown, 0);
    assert_eq!(m.terminal_outcomes(), m.submitted);
    for pending in pendings {
        pending
            .wait()
            .expect("drained requests are served, not shed");
    }
}

/// A zero deadline expires every request with a typed error — no panic,
/// no hang, and the worker stays alive for the next request.
#[test]
fn zero_deadline_requests_expire_with_a_typed_error() {
    quiet_injected_panics();
    let (validator, plan, images) = trained_setup();
    let mut cfg = generous_cfg();
    cfg.deadline = Duration::ZERO;
    let server = Server::start(validator, plan, cfg);

    let pendings: Vec<_> = images
        .iter()
        .take(10)
        .map(|img| {
            server
                .try_submit(img.clone())
                .expect("queue capacity exceeds the burst")
        })
        .collect();
    for pending in pendings {
        assert!(matches!(pending.wait(), Err(ScoreError::DeadlineExpired)));
    }
    let m = server.shutdown();
    assert_eq!(m.expired, 10);
    assert_eq!(m.worker_crashes, 0);
    assert_eq!(m.terminal_outcomes(), m.submitted);
}

/// Malformed inputs come back as typed `BadInput` errors; the worker
/// survives them and keeps serving bit-identical results.
#[test]
fn malformed_inputs_fail_typed_without_killing_the_worker() {
    quiet_injected_panics();
    let (validator, plan, images) = trained_setup();
    let server = Server::start(Arc::clone(&validator), Arc::clone(&plan), generous_cfg());

    let mut poisoned = images[0].clone();
    poisoned.set(&[0, 2, 3], f32::NAN);
    let nan = server.try_submit(poisoned).expect("queue has room").wait();
    assert!(matches!(
        nan,
        Err(ScoreError::BadInput(BadInput::NonFinite { .. }))
    ));

    let shape = server
        .try_submit(Tensor::zeros(&[1, 5, 5]))
        .expect("queue has room")
        .wait();
    assert!(matches!(
        shape,
        Err(ScoreError::BadInput(BadInput::WrongShape { .. }))
    ));

    let resp = server
        .try_submit(images[1].clone())
        .expect("queue has room")
        .wait()
        .expect("clean input after bad ones still serves");
    let (p, _, per_layer, _) = direct(&validator, &plan, &images[1]);
    assert_eq!(resp.predicted, p);
    for (a, b) in resp.per_layer.iter().zip(&per_layer) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    let m = server.shutdown();
    assert_eq!(m.bad_input, 2);
    assert_eq!(m.worker_crashes, 0);
    assert_eq!(m.worker_respawns, 0);
    assert_eq!(m.terminal_outcomes(), m.submitted);
}

/// Regression pin for the registry-backed metrics refactor: a fixed
/// serialized schedule (20 good images, 3 NaN-poisoned, 2 wrong-shape)
/// must produce exactly the counter values the pre-registry field-based
/// implementation produced, and the JSON export must agree with the
/// snapshot.
#[test]
fn metrics_match_pre_refactor_values_on_fixed_schedule() {
    quiet_injected_panics();
    let (validator, plan, images) = trained_setup();
    let mut cfg = generous_cfg();
    cfg.workers = 1;
    let server = Server::start(validator, plan, cfg);

    // Serialized submissions: 25 requests with a deterministic good/bad
    // pattern, each awaited before the next is submitted.
    let mut good = 0u64;
    let mut nan = 0u64;
    let mut shape = 0u64;
    for i in 0..25usize {
        let img = match i % 5 {
            3 if nan < 3 => {
                nan += 1;
                let mut bad = images[i % images.len()].clone();
                bad.set(&[0, 0, 0], f32::NAN);
                bad
            }
            4 if shape < 2 => {
                shape += 1;
                Tensor::zeros(&[1, 5, 5])
            }
            _ => {
                good += 1;
                images[i % images.len()].clone()
            }
        };
        let _ = server
            .try_submit(img)
            .expect("serialized submissions never fill the queue")
            .wait();
    }

    let json = server.metrics_json();
    let m = server.shutdown();
    assert_eq!(m.submitted, 25);
    assert_eq!(m.served_full, good);
    assert_eq!(m.served_reduced, 0);
    assert_eq!(m.served_confidence, 0);
    assert_eq!(m.bad_input, nan + shape);
    assert_eq!(m.expired, 0);
    assert_eq!(m.rejected_queue_full, 0);
    assert_eq!(m.rejected_shutdown, 0);
    assert_eq!(m.worker_crashes, 0);
    assert_eq!(m.worker_respawns, 0);
    assert_eq!(m.shed_shutdown, 0);
    assert_eq!(m.recovery_count, 0);
    assert_eq!(m.recovery_max_us, 0);
    assert!((m.recovery_mean_us - 0.0).abs() < f64::EPSILON);
    assert_eq!(m.terminal_outcomes(), m.submitted);
    // Only served requests are recorded in the latency histogram, so
    // its quantiles are positive and ordered.
    assert!(m.latency_p50_us > 0);
    assert!(m.latency_p50_us <= m.latency_p95_us);
    assert!(m.latency_p95_us <= m.latency_p99_us);
    // The JSON export reads the same registry the snapshot does.
    assert!(json.contains(&format!("\"serve.submitted\": {}", m.submitted)));
    assert!(json.contains(&format!("\"serve.served_full\": {}", m.served_full)));
    assert!(json.contains(&format!("\"serve.bad_input\": {}", m.bad_input)));
    assert!(json.contains("\"serve.latency_us\": {\"count\":"));
}

/// The drift circuit breaker, end to end on deterministic traffic: a
/// single repeated clean image gives a constant joint-discrepancy
/// stream (KS exactly 0, CUSUM at its floor — no false alarm possible),
/// a brightness-shifted image trips the monitor and opens the breaker
/// (responses flip to `DriftDegraded`, probes stay full), and returning
/// to the clean image closes it again. Accounting stays exact through
/// both transitions.
#[test]
fn drift_breaker_opens_on_shift_and_closes_on_recovery() {
    quiet_injected_panics();
    let (validator, plan, images) = trained_setup();
    let mut cfg = generous_cfg();
    cfg.workers = 1;
    let breaker = BreakerConfig {
        drift: DriftConfig {
            window: 16,
            stride: 4,
            sustain: 2,
            recover: 2,
            ..DriftConfig::default()
        },
        probe_every: 4,
        obs_capacity: 1024,
    };
    let probe_every = breaker.probe_every;
    cfg.breaker = Some(breaker);
    let server = Server::start(validator, plan, cfg);

    let clean = images[0].clone();
    let shifted = clean.map(|x| x + 0.6);

    // Phase 1 — stationary: enough serialized requests to calibrate the
    // monitor and run several evaluations. Every one must serve full.
    for i in 0..64 {
        let resp = server
            .try_submit(clean.clone())
            .expect("serialized submissions never fill the queue")
            .wait()
            .expect("clean requests serve");
        assert_eq!(resp.via, ServedVia::FullJoint, "stationary request {i}");
    }
    let mid = server.metrics();
    assert_eq!(mid.breaker_opened, 0, "false alarm on constant traffic");
    assert_eq!(mid.served_drift_degraded, 0);

    // Phase 2 — shift: keep submitting the shifted image until the
    // monitor latches and the breaker visibly degrades a response.
    let mut opened = false;
    for _ in 0..2000 {
        let resp = server
            .try_submit(shifted.clone())
            .expect("serialized submissions never fill the queue")
            .wait()
            .expect("shifted requests still serve");
        if resp.via == ServedVia::DriftDegraded {
            assert!(resp.joint.is_none(), "degraded rung reports no joint");
            opened = true;
            break;
        }
    }
    assert!(opened, "the shifted stream must open the breaker");
    assert!(server.metrics().breaker_opened >= 1);

    // Phase 3 — recovery: clean traffic again. Probes (every 4th seq)
    // keep feeding the monitor; once the alert clears, a non-probe
    // request serving full-joint proves the breaker closed.
    let mut closed = false;
    for _ in 0..2000 {
        let resp = server
            .try_submit(clean.clone())
            .expect("serialized submissions never fill the queue")
            .wait()
            .expect("clean requests serve");
        if resp.via == ServedVia::FullJoint && !resp.seq.is_multiple_of(probe_every) {
            closed = true;
            break;
        }
    }
    assert!(closed, "clean traffic must close the breaker");

    let json = server.metrics_json();
    let m = server.shutdown();
    assert!(m.breaker_opened >= 1);
    assert!(m.breaker_closed >= 1);
    assert!(m.served_drift_degraded >= 1);
    assert_eq!(m.terminal_outcomes(), m.submitted);
    // Drift gauges and serve counters publish side by side in the same
    // registry export.
    assert!(
        json.contains("drift.ks_stat"),
        "missing drift gauges:\n{json}"
    );
    assert!(json.contains("serve.breaker_opened"));
    assert!(json.contains("serve.rejected_queue_full"));
}

/// With a single worker pinned down by an injected latency spike and a
/// one-slot queue, a burst overflows into typed `QueueFull` rejections
/// instead of blocking or dropping silently.
#[cfg(feature = "fault-inject")]
#[test]
fn backpressure_rejects_with_typed_queue_full() {
    quiet_injected_panics();
    let (validator, plan, images) = trained_setup();
    let mut cfg = generous_cfg();
    cfg.workers = 1;
    cfg.queue_capacity = 1;
    cfg.deadline = Duration::from_secs(10);
    cfg.faults = Some(FaultPlan {
        seed: 1,
        panic_per_mille: 0,
        spike_per_mille: 1000,
        spike: Duration::from_millis(200),
    });
    let server = Server::start(validator, plan, cfg);

    // One request can be in flight (spiking for 200ms) and one queued;
    // the third submission of a back-to-back burst must bounce.
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for img in images.iter().take(3) {
        match server.try_submit(img.clone()) {
            Ok(p) => accepted.push(p),
            Err(Rejected::QueueFull { retry_after }) => {
                rejected += 1;
                assert!(
                    retry_after > Duration::ZERO,
                    "a rejection always carries a usable backoff hint"
                );
            }
            Err(Rejected::ShuttingDown) => panic!("server is not shutting down"),
        }
    }
    assert!(rejected >= 1, "burst should overflow the one-slot queue");
    for pending in accepted {
        pending
            .wait()
            .expect("accepted requests ride out the spike and serve");
    }
    let m = server.shutdown();
    assert_eq!(m.rejected_queue_full, rejected);
    assert_eq!(m.terminal_outcomes(), m.submitted);
}

/// The injected fault schedule is a pure function of the sequence
/// number, so each request's outcome is exactly predictable: scheduled
/// panics surface as `WorkerCrashed`, everything else is served by the
/// respawned worker bit-identically to the direct path.
#[cfg(feature = "fault-inject")]
#[test]
fn respawned_workers_score_bit_identically() {
    quiet_injected_panics();
    let (validator, plan, images) = trained_setup();
    let faults = FaultPlan {
        seed: 7,
        panic_per_mille: 250,
        spike_per_mille: 0,
        spike: Duration::ZERO,
    };
    const N: u64 = 40;
    let crashes: Vec<u64> = (0..N).filter(|&s| faults.panic_hits(s)).collect();
    assert!(
        !crashes.is_empty() && crashes.len() < N as usize,
        "seed 7 must schedule both crashes and clean serves in 0..{N}"
    );
    assert!(
        crashes
            .iter()
            .any(|&c| (c + 1..N).any(|s| !faults.panic_hits(s))),
        "at least one crash must be followed by a clean serve"
    );

    let mut cfg = generous_cfg();
    cfg.workers = 1;
    cfg.deadline = Duration::from_secs(10);
    cfg.faults = Some(faults.clone());
    let server = Server::start(Arc::clone(&validator), Arc::clone(&plan), cfg);

    // Submit one at a time so sequence numbers match submission order
    // and each respawn completes before the next clean request.
    for seq in 0..N {
        let img = &images[(seq as usize) % images.len()];
        let outcome = server
            .try_submit(img.clone())
            .expect("serialized submissions never fill the queue")
            .wait();
        if faults.panic_hits(seq) {
            assert!(
                matches!(outcome, Err(ScoreError::WorkerCrashed)),
                "request {seq} was scheduled to crash"
            );
        } else {
            let resp = outcome.expect("unscheduled requests serve normally");
            assert_eq!(resp.seq, seq);
            let (p, c, per_layer, joint) = direct(&validator, &plan, img);
            assert_eq!(resp.predicted, p, "request {seq}");
            assert_eq!(resp.confidence.to_bits(), c.to_bits(), "request {seq}");
            for (a, b) in resp.per_layer.iter().zip(&per_layer) {
                assert_eq!(a.to_bits(), b.to_bits(), "request {seq}");
            }
            let got_joint = resp.joint.expect("full rung reports the joint");
            assert_eq!(got_joint.to_bits(), joint.to_bits(), "request {seq}");
        }
    }

    let m = server.shutdown();
    assert_eq!(m.worker_crashes, crashes.len() as u64);
    // Serialized singles: every crash event is also a terminal request.
    assert_eq!(m.requests_crashed, crashes.len() as u64);
    assert!(m.worker_respawns >= 1, "supervisor must have respawned");
    assert!(m.recovery_count >= 1, "a recovery interval was recorded");
    assert_eq!(m.terminal_outcomes(), m.submitted);
}

/// A `Shed` shutdown fails the backlog fast with `ScoreError::Shutdown`
/// instead of draining behind a spiking worker.
#[cfg(feature = "fault-inject")]
#[test]
fn shed_shutdown_fails_backlog_with_typed_error() {
    quiet_injected_panics();
    let (validator, plan, images) = trained_setup();
    let mut cfg = generous_cfg();
    cfg.workers = 1;
    cfg.deadline = Duration::from_secs(10);
    cfg.shutdown = ShutdownPolicy::Shed;
    cfg.faults = Some(FaultPlan {
        seed: 3,
        panic_per_mille: 0,
        spike_per_mille: 1000,
        spike: Duration::from_millis(50),
    });
    let server = Server::start(validator, plan, cfg);

    let pendings: Vec<_> = images
        .iter()
        .take(20)
        .map(|img| {
            server
                .try_submit(img.clone())
                .expect("queue capacity exceeds the burst")
        })
        .collect();
    let m = server.shutdown();

    let mut shed = 0u64;
    let mut served = 0u64;
    for pending in pendings {
        match pending.wait() {
            Ok(_) => served += 1,
            Err(ScoreError::Shutdown) => shed += 1,
            other => panic!("unexpected shed-shutdown outcome: {other:?}"),
        }
    }
    assert!(shed >= 1, "a spiking worker cannot outrun the shed");
    assert_eq!(m.shed_shutdown, shed);
    assert_eq!(m.served(), served);
    assert_eq!(m.terminal_outcomes(), m.submitted);
}

/// The headline property: under mixed faults (panics, spikes, bad
/// inputs, backpressure) across several seeds, every accepted request
/// reaches exactly one terminal outcome — the client-side tally of
/// outcomes matches the server's counters category by category, and
/// nothing hangs.
#[cfg(feature = "fault-inject")]
#[test]
fn every_request_reaches_exactly_one_terminal_outcome() {
    quiet_injected_panics();
    let (validator, plan, images) = trained_setup();
    for seed in [1u64, 7, 42] {
        let mut cfg = generous_cfg();
        cfg.workers = 2;
        cfg.queue_capacity = 8;
        cfg.deadline = Duration::from_millis(25);
        cfg.faults = Some(FaultPlan {
            seed,
            panic_per_mille: 100,
            spike_per_mille: 100,
            spike: Duration::from_millis(1),
        });
        let server = Server::start(Arc::clone(&validator), Arc::clone(&plan), cfg);

        let mut accepted = Vec::new();
        let mut rejected_full = 0u64;
        for i in 0..120usize {
            let img = match i % 10 {
                0 => {
                    let mut bad = images[i % images.len()].clone();
                    bad.set(&[0, 0, 0], f32::NAN);
                    bad
                }
                1 => Tensor::zeros(&[1, 5, 5]),
                _ => images[i % images.len()].clone(),
            };
            match server.try_submit(img) {
                Ok(p) => accepted.push(p),
                Err(Rejected::QueueFull { .. }) => rejected_full += 1,
                Err(Rejected::ShuttingDown) => panic!("server is not shutting down"),
            }
        }

        let mut served = 0u64;
        let mut expired = 0u64;
        let mut bad_input = 0u64;
        let mut crashed = 0u64;
        let mut shed = 0u64;
        let n_accepted = accepted.len() as u64;
        for (i, pending) in accepted.into_iter().enumerate() {
            let outcome = pending
                .wait_timeout(Duration::from_secs(10))
                .unwrap_or_else(|_| panic!("request {i} hung (seed {seed})"));
            match outcome {
                Ok(_) => served += 1,
                Err(ScoreError::DeadlineExpired) => expired += 1,
                Err(ScoreError::BadInput(_)) => bad_input += 1,
                Err(ScoreError::WorkerCrashed) => crashed += 1,
                Err(ScoreError::Shutdown) => shed += 1,
            }
        }

        let m = server.shutdown();
        assert_eq!(m.submitted, n_accepted, "seed {seed}");
        assert_eq!(m.rejected_queue_full, rejected_full, "seed {seed}");
        assert_eq!(m.served(), served, "seed {seed}");
        assert_eq!(m.expired, expired, "seed {seed}");
        assert_eq!(m.bad_input, bad_input, "seed {seed}");
        // Terminal crashes are per-request; crash *events* can exceed
        // them when a mid-batch panic parked its members for retry.
        assert_eq!(m.requests_crashed, crashed, "seed {seed}");
        assert!(m.worker_crashes >= m.requests_crashed, "seed {seed}");
        assert_eq!(m.shed_shutdown, shed, "seed {seed}");
        assert_eq!(m.terminal_outcomes(), m.submitted, "seed {seed}");
    }
}

/// A burst piling up behind a latency spike coalesces into real batches,
/// and every batched response is bit-identical to the direct path. This
/// is the serving-side half of the dv-core `batch_equivalence` property:
/// coalescing changes throughput, never the numbers.
#[cfg(feature = "fault-inject")]
#[test]
fn coalesced_batches_serve_bit_identically() {
    quiet_injected_panics();
    let (validator, plan, images) = trained_setup();
    // A schedule that spikes seq 0 and nothing else in the burst: while
    // the single worker sleeps on request 0, the rest queue up and the
    // next wakeup must drain them as batches.
    let faults = (0..20_000u64)
        .map(|seed| FaultPlan {
            seed,
            panic_per_mille: 0,
            spike_per_mille: 60,
            spike: Duration::from_millis(200),
        })
        .find(|f| f.spike_hits(0) && (1..16).all(|s| !f.spike_hits(s)))
        .expect("a seed spiking exactly seq 0 exists in 0..20000");

    let mut cfg = generous_cfg();
    cfg.workers = 1;
    cfg.deadline = Duration::from_secs(10);
    cfg.faults = Some(faults);
    let server = Server::start(Arc::clone(&validator), Arc::clone(&plan), cfg);

    let pendings: Vec<_> = images
        .iter()
        .take(16)
        .map(|img| {
            server
                .try_submit(img.clone())
                .expect("queue capacity exceeds the burst")
        })
        .collect();

    let mut widest = 0usize;
    for (i, pending) in pendings.into_iter().enumerate() {
        let resp = pending.wait().expect("no panics are scheduled");
        assert_eq!(resp.via, ServedVia::FullJoint, "request {i}");
        widest = widest.max(resp.batch);
        let (p, c, per_layer, joint) = direct(&validator, &plan, &images[i]);
        assert_eq!(resp.predicted, p, "request {i}");
        assert_eq!(resp.confidence.to_bits(), c.to_bits(), "request {i}");
        assert_eq!(resp.per_layer.len(), per_layer.len(), "request {i}");
        for (a, b) in resp.per_layer.iter().zip(&per_layer) {
            assert_eq!(a.to_bits(), b.to_bits(), "request {i}");
        }
        let got_joint = resp.joint.expect("full rung reports the joint");
        assert_eq!(got_joint.to_bits(), joint.to_bits(), "request {i}");
    }
    assert!(widest >= 2, "the burst behind the spike must coalesce");

    let m = server.shutdown();
    assert_eq!(m.served_full, 16);
    assert!(m.batches >= 1, "at least one multi-request batch scored");
    assert!(m.coalesced >= 2, "coalesced members were counted");
    assert_eq!(m.requests_crashed, 0);
    assert_eq!(m.terminal_outcomes(), m.submitted);
}

/// A worker panic in the middle of a coalesced batch must not take the
/// innocent members down with it: they are parked before scoring starts,
/// re-scored singly by the respawned worker, and only the request whose
/// injected fault caused the panic reaches `WorkerCrashed` — exactly
/// once, after its single retry deterministically re-panics.
#[cfg(feature = "fault-inject")]
#[test]
fn mid_batch_crash_retries_members_and_accounts_exactly() {
    quiet_injected_panics();
    let (validator, plan, images) = trained_setup();
    // A schedule where seq 0 spikes (holding the worker while 1..8 pile
    // into one batch), no other burst member spikes, seqs 0 and 1 never
    // panic, and exactly one of 2..8 panics — so the batch that forms
    // behind the spike crashes mid-flight with known innocents.
    let faults = (0..100_000u64)
        .map(|seed| FaultPlan {
            seed,
            panic_per_mille: 120,
            spike_per_mille: 60,
            spike: Duration::from_millis(200),
        })
        .find(|f| {
            f.spike_hits(0)
                && (1..8).all(|s| !f.spike_hits(s))
                && !f.panic_hits(0)
                && !f.panic_hits(1)
                && (2..8).filter(|&s| f.panic_hits(s)).count() == 1
        })
        .expect("a qualifying fault seed exists in 0..100000");
    let guilty = (2..8)
        .find(|&s| faults.panic_hits(s))
        .expect("the filter above guarantees one");

    let mut cfg = generous_cfg();
    cfg.workers = 1;
    cfg.deadline = Duration::from_secs(10);
    cfg.faults = Some(faults);
    let server = Server::start(Arc::clone(&validator), Arc::clone(&plan), cfg);

    let pendings: Vec<_> = images
        .iter()
        .take(8)
        .map(|img| {
            server
                .try_submit(img.clone())
                .expect("queue capacity exceeds the burst")
        })
        .collect();

    let mut crashed = Vec::new();
    for (i, pending) in pendings.into_iter().enumerate() {
        let outcome = pending
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|_| panic!("request {i} hung after the mid-batch crash"));
        match outcome {
            Ok(resp) => {
                // Retried members are re-scored singly but stay
                // bit-identical to the direct path.
                let (p, c, per_layer, joint) = direct(&validator, &plan, &images[i]);
                assert_eq!(resp.predicted, p, "request {i}");
                assert_eq!(resp.confidence.to_bits(), c.to_bits(), "request {i}");
                for (a, b) in resp.per_layer.iter().zip(&per_layer) {
                    assert_eq!(a.to_bits(), b.to_bits(), "request {i}");
                }
                let got_joint = resp.joint.expect("full rung reports the joint");
                assert_eq!(got_joint.to_bits(), joint.to_bits(), "request {i}");
            }
            Err(ScoreError::WorkerCrashed) => crashed.push(i as u64),
            other => panic!("unexpected outcome for request {i}: {other:?}"),
        }
    }
    assert_eq!(
        crashed,
        vec![guilty],
        "exactly the scheduled member crashes, exactly once"
    );

    let m = server.shutdown();
    assert_eq!(m.served(), 7, "every innocent member was served");
    assert_eq!(m.requests_crashed, 1, "one terminal crash outcome");
    assert_eq!(
        m.worker_crashes, 2,
        "the batch panic plus the guilty member's terminal single retry"
    );
    assert!(
        m.batch_retried >= 1,
        "parked members were drained as retries"
    );
    // 8, not 7: if the whole burst lands in one drain, the spiked seq 0
    // is parked as a single next to the batch and rides the retry too.
    assert!(m.batch_retried <= 8);
    assert!(m.worker_respawns >= 2);
    assert_eq!(m.terminal_outcomes(), m.submitted);
}
