//! Property tests for the exporters and the exemplar histogram: every
//! generated snapshot must serialize to well-formed JSON (checked by a
//! hand-rolled validator — this workspace is dependency-free, so the
//! emitters cannot lean on serde and neither can their tests), flow
//! events must pair `s`→`f` per trace id, and per-bucket exemplars must
//! come out identical whether recorded from one thread or four.

use dv_trace::{
    chrome_trace_json, metrics_json, LaneSnapshot, LogLinearHistogram, MetricsRegistry, SpanRecord,
    TraceSnapshot,
};
use proptest::prelude::*;

/// Span/event names deliberately hostile to naive JSON emission: every
/// escape class [`chrome_trace_json`] must handle (quotes, backslashes,
/// newlines, tabs, low control chars, non-ASCII).
const NAMES: &[&str] = &[
    "serve.enqueued",
    "tensor.matmul",
    "quote\"inside",
    "back\\slash.stage",
    "line\nbreak.stage",
    "tab\there",
    "ctrl\u{0001}char.low",
    "unicode.λ.名前",
];

const THREAD_NAMES: &[&str] = &["main", "dv-serve-0", "crew \"1\"\n", "w\ttab", "λ-worker"];

// ---------------------------------------------------------------------
// Hand-rolled JSON well-formedness validator (recursive descent).
// ---------------------------------------------------------------------

struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl P<'_> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.lit("true"),
            Some(b'f') => self.lit("false"),
            Some(b'n') => self.lit("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.i += 1; // consume '{'
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            if self.b.get(self.i) != Some(&b':') {
                return Err(format!("expected ':' at byte {}", self.i));
            }
            self.i += 1;
            self.value()?;
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.i += 1; // consume '['
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        if self.b.get(self.i) != Some(&b'"') {
            return Err(format!("expected '\"' at byte {}", self.i));
        }
        self.i += 1;
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            for k in 1..=4 {
                                if !self.b.get(self.i + k).is_some_and(u8::is_ascii_hexdigit) {
                                    return Err(format!("bad \\u escape at byte {}", self.i));
                                }
                            }
                            self.i += 5;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                }
                // An unescaped control character is exactly the bug the
                // emitter's json_string exists to prevent.
                Some(&c) if c < 0x20 => {
                    return Err(format!("unescaped control byte {c:#04x} at {}", self.i))
                }
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        let start = self.i;
        while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("number without digits at byte {}", self.i));
        }
        if self.b.get(self.i) == Some(&b'.') {
            self.i += 1;
            let frac = self.i;
            while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
                self.i += 1;
            }
            if self.i == frac {
                return Err("dot without fraction digits".to_string());
            }
        }
        if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let exp = self.i;
            while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
                self.i += 1;
            }
            if self.i == exp {
                return Err("exponent without digits".to_string());
            }
        }
        Ok(())
    }

    fn lit(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }
}

/// Checks `s` parses as exactly one JSON value with nothing trailing.
fn json_ok(s: &str) -> Result<(), String> {
    let mut p = P {
        b: s.as_bytes(),
        i: 0,
    };
    p.value()?;
    p.ws();
    if p.i == p.b.len() {
        Ok(())
    } else {
        Err(format!("trailing bytes at {}", p.i))
    }
}

// ---------------------------------------------------------------------
// Snapshot generation.
// ---------------------------------------------------------------------

/// A generated record: `(name_idx, lane, trace)` + `(jitter, dur, arg)`,
/// the exact tuple shape the proptest strategies produce.
type GenRow = ((usize, usize, u64), (u64, u64, u64));

/// Builds a snapshot from generated rows. `trace != 0` rows become
/// lifecycle instant events; `trace == 0` rows become duration spans.
/// Timestamps are made globally unique (`i * 1000 + jitter`) so any
/// serialized event string is unambiguous in substring assertions.
fn build_snapshot(rows: &[GenRow], dropped: u64) -> TraceSnapshot {
    let mut lanes: Vec<LaneSnapshot> = (0..4)
        .map(|lane| LaneSnapshot {
            lane,
            thread_name: THREAD_NAMES[lane % THREAD_NAMES.len()].to_string(),
            spans: Vec::new(),
        })
        .collect();
    for (i, &((name_idx, lane, trace), (jitter, dur, arg))) in rows.iter().enumerate() {
        let is_event = trace != 0;
        lanes[lane].spans.push(SpanRecord {
            name: NAMES[name_idx % NAMES.len()],
            seq: i as u64,
            depth: 0,
            start_ns: i as u64 * 1000 + jitter % 997,
            dur_ns: if is_event { 0 } else { dur },
            trace,
            parent: if i == 0 { 0 } else { i as u64 - 1 },
            arg,
            is_event,
        });
    }
    for lane in &mut lanes {
        lane.spans.sort_by_key(|s| s.start_ns);
    }
    lanes.retain(|l| !l.spans.is_empty());
    TraceSnapshot { lanes, dropped }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn chrome_trace_is_well_formed_json_for_any_snapshot(
        rows in prop::collection::vec(
            ((0usize..8, 0usize..4, 0u64..4), (0u64..997, 0u64..50_000, 0u64..10)),
            0..60,
        ),
        dropped in 0u64..5,
    ) {
        let snap = build_snapshot(&rows, dropped);
        let json = chrome_trace_json(&snap);
        prop_assert!(json_ok(&json).is_ok(), "{}:\n{json}", json_ok(&json).unwrap_err());
        prop_assert!(json.contains(&format!("\"dropped_spans\":{dropped}")));
        // Every row surfaces as exactly one X or i event.
        let events = rows.iter().filter(|r| r.0 .2 != 0).count();
        let spans = rows.len() - events;
        prop_assert_eq!(json.matches("\"ph\":\"i\"").count(), events);
        prop_assert_eq!(json.matches("\"ph\":\"X\"").count(), spans);
    }

    #[test]
    fn metrics_json_is_well_formed_for_any_registry(
        counters in prop::collection::vec((0usize..8, 0u64..1_000_000), 0..6),
        hist_values in prop::collection::vec(0u64..10_000_000, 0..50),
    ) {
        let reg = MetricsRegistry::new();
        for &(idx, v) in &counters {
            reg.counter(NAMES[idx % NAMES.len()]).add(v);
        }
        for &v in &hist_values {
            reg.histogram("serve.latency_us").record(v);
        }
        let json = metrics_json(&reg);
        prop_assert!(json_ok(&json).is_ok(), "{}:\n{json}", json_ok(&json).unwrap_err());
        if !hist_values.is_empty() {
            prop_assert!(json.contains("\"p999\":"), "histograms export p999:\n{json}");
        }
    }

    #[test]
    fn flow_events_pair_start_to_finish_per_trace(
        rows in prop::collection::vec(
            ((0usize..8, 0usize..4, 0u64..4), (0u64..997, 0u64..50_000, 0u64..10)),
            0..60,
        ),
    ) {
        let snap = build_snapshot(&rows, 0);
        let json = chrome_trace_json(&snap);
        let micros = |ns: u64| format!("{}.{:03}", ns / 1_000, ns % 1_000);
        let mut flow_total = 0;
        for tl in dv_trace::stitch(&snap) {
            let id_marker = format!("\"id\":{},\"ts\":", tl.trace);
            let n = tl.events.len();
            if n < 2 {
                prop_assert_eq!(
                    json.matches(&id_marker).count(), 0,
                    "single-event trace {} must emit no dangling flow", tl.trace
                );
                continue;
            }
            flow_total += n;
            prop_assert_eq!(json.matches(&id_marker).count(), n, "trace {}", tl.trace);
            let first = tl.events[0];
            let last = tl.events[n - 1];
            let s_ev = format!(
                "{{\"ph\":\"s\",\"pid\":1,\"tid\":{},\"cat\":\"dv.flow\",\"name\":\"dv.request\",\"id\":{},\"ts\":{}}}",
                first.lane, tl.trace, micros(first.ts_ns)
            );
            let f_ev = format!(
                "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":{},\"cat\":\"dv.flow\",\"name\":\"dv.request\",\"id\":{},\"ts\":{}}}",
                last.lane, tl.trace, micros(last.ts_ns)
            );
            prop_assert_eq!(json.matches(&s_ev).count(), 1, "missing flow start:\n{json}");
            prop_assert_eq!(json.matches(&f_ev).count(), 1, "missing flow finish:\n{json}");
        }
        // No flow events beyond the ones the timelines account for.
        prop_assert_eq!(
            json.matches("\"cat\":\"dv.flow\"").count(),
            flow_total,
            "stray flow events:\n{json}"
        );
    }

    #[test]
    fn exemplars_are_identical_from_one_thread_or_four(
        values in prop::collection::vec((0u64..1_000_000, 1u64..1_000_000), 1..300),
    ) {
        let serial = LogLinearHistogram::new();
        for &(v, t) in &values {
            serial.record_with_exemplar(v, t);
        }
        let sharded = LogLinearHistogram::new();
        std::thread::scope(|s| {
            for w in 0..4 {
                let chunk: Vec<(u64, u64)> =
                    values.iter().skip(w).step_by(4).copied().collect();
                let h = &sharded;
                s.spawn(move || {
                    for (v, t) in chunk {
                        h.record_with_exemplar(v, t);
                    }
                });
            }
        });
        prop_assert_eq!(serial.count(), sharded.count());
        prop_assert_eq!(serial.sum(), sharded.sum());
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(serial.quantile(q), sharded.quantile(q), "q = {}", q);
            prop_assert_eq!(
                serial.quantile_exemplar(q),
                sharded.quantile_exemplar(q),
                "exemplar at q = {} depends on recording interleaving", q
            );
        }
    }
}
