//! Property tests for the promoted log-linear histogram: bucket
//! boundaries, merge associativity, and percentile monotonicity.

use dv_trace::{bucket_floor, bucket_index, LogLinearHistogram, BUCKETS};
use proptest::prelude::*;

/// Values spanning every octave: small linear range, mid values, and
/// huge shifted values.
fn value_strategy() -> impl Strategy<Value = u64> {
    (0u64..=40, 0u64..=1023).prop_map(|(shift, lo)| {
        if shift == 0 {
            lo
        } else {
            (lo << shift.min(53)).max(1)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bucket_index_brackets_every_value(v in value_strategy()) {
        let idx = bucket_index(v);
        prop_assert!(idx < BUCKETS);
        prop_assert!(bucket_floor(idx) <= v, "floor {} above {v}", bucket_floor(idx));
        if idx + 1 < BUCKETS {
            prop_assert!(v < bucket_floor(idx + 1), "{v} reaches next floor {}", bucket_floor(idx + 1));
        }
    }

    #[test]
    fn bucket_index_is_monotone(a in value_strategy(), b in value_strategy()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi), "{lo} vs {hi}");
    }

    #[test]
    fn relative_error_within_one_octave_step(v in 8u64..16_000_000_000) {
        // Bucket width is one sub-step: floor ≥ v * 8/9 for log-linear
        // with 8 sub-buckets. Holds below the last-bucket saturation
        // point bucket_floor(BUCKETS - 1) = 15 << 30 ≈ 1.6e10; beyond
        // that everything collapses into the final bucket by design.
        let floor = bucket_floor(bucket_index(v));
        prop_assert!(floor <= v);
        prop_assert!(v - floor <= floor / 8 + 1, "v {v} floor {floor}");
    }

    #[test]
    fn percentiles_are_monotone_under_random_fills(
        values in proptest::collection::vec(0u64..1_000_000, 1..400),
    ) {
        let h = LogLinearHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        let p90 = h.quantile(0.90);
        let p99 = h.quantile(0.99);
        prop_assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        prop_assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        prop_assert_eq!(h.count(), values.len() as u64);
        let lo = *values.iter().min().expect("nonempty");
        let hi = *values.iter().max().expect("nonempty");
        prop_assert_eq!(h.min(), lo);
        prop_assert_eq!(h.max(), hi);
        // Quantiles stay inside the recorded range up to bucket width.
        prop_assert!(h.quantile(1.0) >= lo);
        prop_assert!(bucket_floor(bucket_index(h.quantile(1.0))) <= hi.max(1) + hi / 8 + 1);
    }

    #[test]
    fn merge_is_associative_and_matches_single_stream(
        xs in proptest::collection::vec(0u64..100_000, 0..120),
        ys in proptest::collection::vec(0u64..100_000, 0..120),
        zs in proptest::collection::vec(0u64..100_000, 0..120),
    ) {
        let fill = |vals: &[u64]| {
            let h = LogLinearHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        // (x ⊕ y) ⊕ z
        let left = fill(&xs);
        left.merge_from(&fill(&ys));
        left.merge_from(&fill(&zs));
        // x ⊕ (y ⊕ z)
        let right_tail = fill(&ys);
        right_tail.merge_from(&fill(&zs));
        let right = fill(&xs);
        right.merge_from(&right_tail);
        // single stream
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        all.extend_from_slice(&zs);
        let whole = fill(&all);
        for h in [&left, &right] {
            prop_assert_eq!(h.count(), whole.count());
            prop_assert_eq!(h.sum(), whole.sum());
            prop_assert_eq!(h.min(), whole.min());
            prop_assert_eq!(h.max(), whole.max());
            for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                prop_assert_eq!(h.quantile(q), whole.quantile(q), "q = {}", q);
            }
        }
    }
}
