//! Lock-free log-linear histogram over `u64` values.
//!
//! Promoted from `crates/serve/src/metrics.rs`: 8 sub-buckets per
//! power-of-two octave (≤ 12.5% relative error), 256 buckets covering
//! the full `u64` range. Quantiles interpolate linearly *within* the
//! bucket holding the target rank (clamped to the exactly-tracked
//! min/max, so `quantile(1.0)` is the true maximum). On top of the
//! promoted core it gains `sum`/`min`/`max` tracking, snapshotting,
//! `merge_from`, a `const` constructor so a registry of histograms can
//! live in a `static`, and per-bucket *exemplars*: the highest trace id
//! to land in each bucket, so a tail bucket points at a concrete
//! replayable request timeline (see [`crate::stitch`]).

use std::sync::atomic::{AtomicU64, Ordering};

const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;

/// Number of buckets; public so property tests can sweep every boundary.
pub const BUCKETS: usize = 256;

/// Bucket index for a recorded value: identity below [`SUB`], then
/// log-linear (octave = position of the MSB, sub-bucket = the next
/// [`SUB_BITS`] bits).
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as usize;
    ((octave + 1) * SUB as usize + sub).min(BUCKETS - 1)
}

/// Smallest value mapping to bucket `idx` (inverse of [`bucket_index`]).
#[must_use]
pub fn bucket_floor(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let octave = idx / SUB as usize - 1;
    let sub = (idx % SUB as usize) as u64;
    (SUB + sub) << octave
}

/// Log-linear histogram with lock-free `SeqCst` recording.
///
/// Everything is `AtomicU64`, so the hot path never takes a lock and a
/// snapshot can be read from any thread. (`Ordering::Relaxed` would do
/// for monotone counters, but dv-lint R2 reserves it for
/// `crates/runtime`; the `SeqCst` cost is noise next to a scored image.)
pub struct LogLinearHistogram {
    buckets: [AtomicU64; BUCKETS],
    /// Per-bucket exemplar: the highest trace id recorded into the
    /// bucket (0 = none). `fetch_max` makes capture commutative, so the
    /// exemplar is a pure function of the recorded (value, trace) set —
    /// deterministic under any thread interleaving.
    exemplars: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl LogLinearHistogram {
    /// An empty histogram. `const` so registries of histograms can be
    /// `static`-initialised without runtime allocation.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            exemplars: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.record_with_exemplar(v, 0);
    }

    /// Records one value and stamps `trace` as the bucket's exemplar if
    /// it is the highest trace id seen there (`trace` 0 = no exemplar).
    /// One extra lock-free `fetch_max` over [`record`](Self::record) —
    /// cheap enough to stay on even when span tracing is compiled out.
    pub fn record_with_exemplar(&self, v: u64, trace: u64) {
        let idx = bucket_index(v);
        self.buckets[idx].fetch_add(1, Ordering::SeqCst);
        if trace != 0 {
            self.exemplars[idx].fetch_max(trace, Ordering::SeqCst);
        }
        self.count.fetch_add(1, Ordering::SeqCst);
        self.sum.fetch_add(v, Ordering::SeqCst);
        self.min.fetch_min(v, Ordering::SeqCst);
        self.max.fetch_max(v, Ordering::SeqCst);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }

    /// Sum of recorded values (wrapping beyond `u64::MAX`).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::SeqCst)
    }

    /// Smallest recorded value, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            return 0;
        }
        self.min.load(Ordering::SeqCst)
    }

    /// Largest recorded value, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::SeqCst)
    }

    /// Exact mean of recorded values, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum() as f64 / n as f64
    }

    /// The bucket index holding the `ceil(q * count)`-th smallest
    /// recorded value, plus the count of values in buckets before it.
    fn rank_bucket(&self, q: f64) -> Option<(usize, u64, u64)> {
        let count = self.count.load(Ordering::SeqCst);
        if count == 0 {
            return None;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for idx in 0..BUCKETS {
            let n = self.buckets[idx].load(Ordering::SeqCst);
            if n > 0 && seen + n >= target {
                return Some((idx, target - seen, n));
            }
            seen += n;
        }
        None
    }

    /// Approximate quantile (`q` in `[0, 1]`), or 0 when nothing was
    /// recorded: the target rank's position *within* its bucket is
    /// interpolated linearly across the bucket's value range, then
    /// clamped to the exactly-tracked `[min, max]` — so `quantile(1.0)`
    /// is the true maximum and no quantile undershoots the minimum.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let Some((idx, pos, n)) = self.rank_bucket(q) else {
            // Racing a concurrent record can leave count ahead of the
            // bucket array; fall back to the largest occupied value.
            return if self.count() == 0 { 0 } else { self.max() };
        };
        let lo = bucket_floor(idx);
        let hi = if idx + 1 < BUCKETS {
            bucket_floor(idx + 1)
        } else {
            lo + 1
        };
        let within = ((hi - lo) as u128 * pos as u128 / n as u128) as u64;
        (lo + within).clamp(self.min(), self.max())
    }

    /// The exemplar trace id of the bucket holding quantile `q` (0 when
    /// the histogram is empty or no traced value landed in that bucket).
    /// This is what links a `p99` readout back to a concrete stitched
    /// request timeline.
    #[must_use]
    pub fn quantile_exemplar(&self, q: f64) -> u64 {
        match self.rank_bucket(q) {
            Some((idx, _, _)) => self.exemplars[idx].load(Ordering::SeqCst),
            None => 0,
        }
    }

    /// The exemplar trace id recorded into bucket `idx` (0 = none).
    #[must_use]
    pub fn bucket_exemplar(&self, idx: usize) -> u64 {
        self.exemplars[idx.min(BUCKETS - 1)].load(Ordering::SeqCst)
    }

    /// Adds every sample of `other` into `self`. Bucket-exact: merging
    /// is associative and commutative, and quantiles of a merge equal
    /// quantiles of recording both streams into one histogram.
    pub fn merge_from(&self, other: &Self) {
        for idx in 0..BUCKETS {
            let n = other.buckets[idx].load(Ordering::SeqCst);
            if n > 0 {
                self.buckets[idx].fetch_add(n, Ordering::SeqCst);
            }
            let ex = other.exemplars[idx].load(Ordering::SeqCst);
            if ex > 0 {
                self.exemplars[idx].fetch_max(ex, Ordering::SeqCst);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::SeqCst), Ordering::SeqCst);
        self.sum
            .fetch_add(other.sum.load(Ordering::SeqCst), Ordering::SeqCst);
        self.min
            .fetch_min(other.min.load(Ordering::SeqCst), Ordering::SeqCst);
        self.max
            .fetch_max(other.max.load(Ordering::SeqCst), Ordering::SeqCst);
    }

    /// Zeroes all buckets and statistics.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::SeqCst);
        }
        for e in &self.exemplars {
            e.store(0, Ordering::SeqCst);
        }
        self.count.store(0, Ordering::SeqCst);
        self.sum.store(0, Ordering::SeqCst);
        self.min.store(u64::MAX, Ordering::SeqCst);
        self.max.store(0, Ordering::SeqCst);
    }

    /// A point-in-time copy of the summary statistics.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time summary of a [`LogLinearHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Median (within-bucket interpolated).
    pub p50: u64,
    /// 90th percentile (within-bucket interpolated).
    pub p90: u64,
    /// 95th percentile (within-bucket interpolated).
    pub p95: u64,
    /// 99th percentile (within-bucket interpolated).
    pub p99: u64,
    /// 99.9th percentile (within-bucket interpolated).
    pub p999: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of recorded values (0 when empty). Exact, unlike
    /// the bucketed quantiles: `sum` and `count` are tracked precisely,
    /// which is what makes e.g. a mean batch width readable straight
    /// off a `serve.batch_size` export.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_floors_match() {
        let mut last = 0;
        for v in [0u64, 1, 7, 8, 9, 15, 16, 31, 100, 1000, 65_535, 1 << 40] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            last = idx;
            assert!(bucket_floor(idx) <= v, "floor above value at {v}");
            if idx + 1 < BUCKETS {
                assert!(bucket_floor(idx + 1) > v, "value past next floor at {v}");
            }
        }
    }

    #[test]
    fn quantiles_land_in_the_right_buckets() {
        let h = LogLinearHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // ≤ 12.5% bucket error plus midpoint rounding.
        assert!((400..=650).contains(&p50), "p50 {p50}");
        assert!((850..=1200).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(0.0).max(1), h.quantile(0.001).max(1));
    }

    /// Hand-built histograms pin the interpolation arithmetic exactly:
    /// rank position within the bucket scales linearly across the
    /// bucket's value range, clamped to the tracked `[min, max]`.
    #[test]
    fn interpolated_quantiles_pin_exact_values() {
        // A single value: every quantile clamps to it.
        let h = LogLinearHistogram::new();
        h.record(10);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 10, "q {q}");
        }

        // Four spread values, one per bucket: rank r lands at the top
        // edge of its bucket (pos = n = 1), clamped at the extremes.
        // Buckets: 100∈[96,104), 200∈[192,208), 300∈[288,320),
        // 400∈[384,416).
        let h = LogLinearHistogram::new();
        for v in [100u64, 200, 300, 400] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.25), 104);
        assert_eq!(h.quantile(0.50), 208);
        assert_eq!(h.quantile(0.75), 320);
        assert_eq!(h.quantile(1.0), 400, "p100 clamps to the exact max");

        // Uniform 1..=1000: p50 rank 500 sits 21 deep in the 32-wide
        // bucket [480,512) → 501; p90 rank 900 sits 5 deep in [896,960)
        // → 901; p999 interpolates past max and clamps back to 1000.
        let h = LogLinearHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.50), 501);
        assert_eq!(h.quantile(0.90), 901);
        assert_eq!(h.quantile(0.999), 1000);
        let s = h.snapshot();
        assert_eq!(s.p50, 501);
        assert_eq!(s.p999, 1000);
    }

    #[test]
    fn exemplars_capture_the_highest_trace_per_bucket() {
        let h = LogLinearHistogram::new();
        h.record_with_exemplar(100, 7);
        h.record_with_exemplar(100, 9);
        h.record_with_exemplar(100, 3);
        h.record_with_exemplar(5000, 42);
        h.record(5000); // trace 0 never overwrites an exemplar
        assert_eq!(h.bucket_exemplar(bucket_index(100)), 9);
        assert_eq!(h.bucket_exemplar(bucket_index(5000)), 42);
        assert_eq!(h.bucket_exemplar(bucket_index(17)), 0, "untouched bucket");
        // The quantile walk and the exemplar walk agree on the bucket.
        assert_eq!(h.quantile_exemplar(0.25), 9);
        assert_eq!(h.quantile_exemplar(1.0), 42);

        let merged = LogLinearHistogram::new();
        merged.record_with_exemplar(100, 8);
        merged.merge_from(&h);
        assert_eq!(merged.bucket_exemplar(bucket_index(100)), 9, "merge max");

        h.reset();
        assert_eq!(h.quantile_exemplar(0.5), 0);
        assert_eq!(h.bucket_exemplar(bucket_index(100)), 0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LogLinearHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.count(), 0);
        let s = h.snapshot();
        assert_eq!(s.p99, 0);
    }

    #[test]
    fn min_max_sum_track_exactly() {
        let h = LogLinearHistogram::new();
        for v in [5u64, 900, 17, 3, 250] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5 + 900 + 17 + 3 + 250);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 900);
    }

    #[test]
    fn reset_returns_to_empty() {
        let h = LogLinearHistogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
    }
}
