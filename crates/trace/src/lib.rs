//! dv-trace: structured tracing and metrics for the Deep Validation
//! workspace.
//!
//! Deep Validation watches a network's internals; this crate watches the
//! pipeline's. It is dependency-free, lock-free on every hot path, and
//! split into an always-on half and a feature-gated half:
//!
//! - **Always on** — [`MetricsRegistry`]: named atomic [`Counter`]s,
//!   [`Gauge`]s, and [`LogLinearHistogram`]s (promoted from dv-serve,
//!   quantile-identical), instantiable per subsystem or process-wide via
//!   [`global()`]; [`Stopwatch`] + [`now_ns`], the workspace's only
//!   sanctioned wall-clock (dv-lint R8 bans raw `std::time::Instant`
//!   elsewhere); [`metrics_json`] for `METRICS.json` snapshots.
//! - **Behind the `trace` feature** — [`span!`]/[`TraceGuard`] scoped
//!   timers recording into fixed-size per-thread ring buffers,
//!   sequence-numbered across threads; per-tap discrepancy telemetry
//!   ([`record_discrepancy`]/[`discrepancy_summary`], running
//!   mean/var/max via Welford); request-scoped lifecycle events
//!   ([`record_event`] with a [`TraceId`] + causal [`EventRef`] parent)
//!   stitched into cross-thread timelines by [`stitch`]/[`segments`];
//!   [`chrome_trace_json`] (`trace.json`, one lane per Crew worker,
//!   flow arrows following each request across lanes) and
//!   [`stage_totals`] (per-stage self-time breakdown). With the feature
//!   off — the default — every probe is a true no-op: [`TraceGuard`] is
//!   zero-sized, nothing reads a clock, and the zero-alloc and
//!   bit-identity suites hold in both modes.
//!
//! # Determinism contract
//!
//! Tracing observes, never steers: no scored value, branch, or
//! iteration order may depend on a clock read or a metric value.
//! Recording is per-thread single-writer (no cross-thread contention a
//! scheduler could amplify), and exports are racy-but-sound atomic
//! reads that are exact at quiescent points. Scores are bit-identical
//! with tracing compiled in, compiled out, recording, or wrapped.
//!
//! ```
//! use dv_trace as trace;
//!
//! // Counters/histograms are always live:
//! let reg = trace::global();
//! reg.counter("demo.images").inc();
//! reg.histogram("demo.score_us").record(184);
//!
//! // Spans cost nothing unless built with `--features trace`:
//! {
//!     trace::span!("demo.batch");
//!     // ... scored work ...
//! }
//! let report = trace::stage_totals(&trace::snapshot());
//! assert!(trace::tracing_enabled() || report.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod causal;
mod export;
mod hist;
mod metric;
mod span;
mod time;
mod welford;

pub use causal::{lifecycle, segments, stitch, RequestTimeline, Segments, TimelineEvent};
pub use export::{chrome_trace_json, metrics_json, stage_totals, StageTotal};
pub use hist::{bucket_floor, bucket_index, HistogramSnapshot, LogLinearHistogram, BUCKETS};
pub use metric::{global, Counter, Gauge, MetricEntry, MetricValue, MetricsRegistry};
pub use span::{
    discrepancy_summary, record_discrepancy, record_event, record_raw, reset, sample_scope,
    snapshot, tracing_enabled, EventRef, LaneSnapshot, SampleGuard, SpanRecord, TraceGuard,
    TraceId, TraceSnapshot, MAX_LANES, MAX_TAPS, RING_CAP,
};
pub use time::{now_ns, Stopwatch};
pub use welford::{TapSummary, Welford};
