//! Named metrics: lock-free registry of counters, gauges, and
//! histograms.
//!
//! A [`MetricsRegistry`] is a fixed-size open-addressed table of slots
//! keyed by `&'static str` names. Registration claims a slot with
//! `OnceLock::get_or_init` (first writer wins; racing registrations of
//! *different* names probe past each other); every later lookup is a
//! lock-free probe plus an atomic load. There is no deregistration —
//! metric names are a static property of the program — but values can be
//! [`reset`](MetricsRegistry::reset) for reuse across bench phases.
//!
//! The registry is instantiable (dv-serve embeds one per `Server`, so
//! concurrent servers in one process do not share counters) and also
//! available as a process-wide [`global()`] for code without a natural
//! owner, such as bench binaries.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::hist::{HistogramSnapshot, LogLinearHistogram};

/// Maximum distinct metric names per registry.
const SLOTS: usize = 192;
/// Maximum distinct histogram names per registry (histograms are ~2 KiB
/// each, so they are pooled separately from the cheap scalar slots).
const HISTS: usize = 24;

/// A monotonically increasing counter.
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            v: AtomicU64::new(0),
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::SeqCst);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::SeqCst);
    }

    /// Raises the stored value to at least `n` (for high-watermarks).
    #[inline]
    pub fn raise_to(&self, n: u64) {
        self.v.fetch_max(n, Ordering::SeqCst);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::SeqCst)
    }

    fn reset(&self) {
        self.v.store(0, Ordering::SeqCst);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A gauge: a value that can move both ways (queue depth, in-flight
/// requests). Stored as `u64`; `dec` saturates at 0 rather than wrap.
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            v: AtomicU64::new(0),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, n: u64) {
        self.v.store(n, Ordering::SeqCst);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::SeqCst);
    }

    /// Subtracts 1, saturating at 0.
    #[inline]
    pub fn dec(&self) {
        // fetch_update never fails with a `Some`-returning closure; the
        // loop retries on contention.
        let _ = self
            .v
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                Some(cur.saturating_sub(1))
            });
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::SeqCst)
    }

    fn reset(&self) {
        self.v.store(0, Ordering::SeqCst);
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// What a registered name refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Everything published atomically when a slot is claimed: later readers
/// either see the whole record or an empty slot, never a half-written
/// name.
struct SlotInfo {
    name: &'static str,
    kind: MetricKind,
    hist_idx: usize,
}

struct Slot {
    info: OnceLock<SlotInfo>,
    counter: Counter,
    gauge: Gauge,
}

impl Slot {
    const fn new() -> Self {
        Self {
            info: OnceLock::new(),
            counter: Counter::new(),
            gauge: Gauge::new(),
        }
    }
}

/// A fixed-capacity registry of named metrics.
///
/// `const`-constructible so a process-wide instance can live in a
/// `static` with zero startup cost. Capacities ([`SLOTS`] names,
/// [`HISTS`] histograms) are generous for this workspace; exceeding them
/// is a programming error and panics with the offending name.
pub struct MetricsRegistry {
    slots: [Slot; SLOTS],
    hists: [LogLinearHistogram; HISTS],
    next_hist: AtomicUsize,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            slots: [const { Slot::new() }; SLOTS],
            hists: [const { LogLinearHistogram::new() }; HISTS],
            next_hist: AtomicUsize::new(0),
        }
    }

    /// The counter registered under `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind, or the
    /// registry is full.
    #[must_use]
    pub fn counter(&self, name: &'static str) -> &Counter {
        let slot = self.slot_for(name, MetricKind::Counter);
        &slot.counter
    }

    /// The gauge registered under `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind, or the
    /// registry is full.
    #[must_use]
    pub fn gauge(&self, name: &'static str) -> &Gauge {
        let slot = self.slot_for(name, MetricKind::Gauge);
        &slot.gauge
    }

    /// The histogram registered under `name`, registering it on first
    /// use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind, or
    /// either the slot table or the histogram pool is full.
    #[must_use]
    pub fn histogram(&self, name: &'static str) -> &LogLinearHistogram {
        let slot = self.slot_for(name, MetricKind::Histogram);
        let idx = slot
            .info
            .get()
            .map(|i| i.hist_idx)
            .expect("slot_for returns only initialised slots");
        assert!(
            idx < HISTS,
            "metrics registry histogram pool exhausted ({HISTS}) registering {name:?}"
        );
        &self.hists[idx]
    }

    /// Finds or claims the slot for `name`, verifying the kind matches.
    fn slot_for(&self, name: &'static str, kind: MetricKind) -> &Slot {
        let mut idx = fnv1a(name.as_bytes()) as usize % SLOTS;
        for _ in 0..SLOTS {
            let slot = &self.slots[idx];
            // get_or_init runs the closure in exactly one thread, so a
            // histogram index is claimed at most once per slot; racing
            // registrations of a different name see the winner's record
            // and probe on.
            let info = slot.info.get_or_init(|| SlotInfo {
                name,
                kind,
                hist_idx: if kind == MetricKind::Histogram {
                    self.next_hist.fetch_add(1, Ordering::SeqCst)
                } else {
                    usize::MAX
                },
            });
            if info.name == name {
                assert!(
                    info.kind == kind,
                    "metric {name:?} registered as {} but requested as {}",
                    info.kind.label(),
                    kind.label()
                );
                return slot;
            }
            idx = (idx + 1) % SLOTS;
        }
        panic!("metrics registry full ({SLOTS} names) registering {name:?}");
    }

    /// Zeroes every registered value (names stay registered). Intended
    /// for quiescent points — between bench phases or tests — not while
    /// other threads are recording.
    pub fn reset(&self) {
        for slot in &self.slots {
            if slot.info.get().is_some() {
                slot.counter.reset();
                slot.gauge.reset();
            }
        }
        let claimed = self.next_hist.load(Ordering::SeqCst).min(HISTS);
        for h in &self.hists[..claimed] {
            h.reset();
        }
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Vec<MetricEntry> {
        let mut out = Vec::new();
        for slot in &self.slots {
            let Some(info) = slot.info.get() else {
                continue;
            };
            let value = match info.kind {
                MetricKind::Counter => MetricValue::Counter(slot.counter.get()),
                MetricKind::Gauge => MetricValue::Gauge(slot.gauge.get()),
                MetricKind::Histogram => {
                    let idx = info.hist_idx.min(HISTS - 1);
                    MetricValue::Histogram(self.hists[idx].snapshot())
                }
            };
            out.push(MetricEntry {
                name: info.name,
                value,
            });
        }
        out.sort_by(|a, b| a.name.cmp(b.name));
        out
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide registry, for code without a natural owner (bench
/// binaries, ad-hoc probes). Subsystems with a lifecycle — like a
/// dv-serve `Server` — embed their own instance instead.
#[must_use]
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: MetricsRegistry = MetricsRegistry::new();
    &GLOBAL
}

/// One named metric in a [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone)]
pub struct MetricEntry {
    /// The registered name.
    pub name: &'static str,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A snapshot value.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// FNV-1a over the name bytes: deterministic across runs and platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter("test.count").inc();
        reg.counter("test.count").add(4);
        assert_eq!(reg.counter("test.count").get(), 5);
        reg.gauge("test.depth").set(7);
        reg.gauge("test.depth").inc();
        reg.gauge("test.depth").dec();
        assert_eq!(reg.gauge("test.depth").get(), 7);
    }

    #[test]
    fn gauge_dec_saturates_at_zero() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("test.sat");
        g.dec();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn same_name_resolves_to_same_metric() {
        let reg = MetricsRegistry::new();
        // Different &'static str values with equal content must alias.
        let a: &'static str = "alias.metric";
        let b: &'static str = String::leak(String::from("alias.metric"));
        reg.counter(a).inc();
        reg.counter(b).inc();
        assert_eq!(reg.counter(a).get(), 2);
    }

    #[test]
    #[should_panic(expected = "registered as counter but requested as gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("test.kind").inc();
        let _ = reg.gauge("test.kind");
    }

    #[test]
    fn histogram_registration_and_snapshot() {
        let reg = MetricsRegistry::new();
        reg.histogram("test.lat").record(100);
        reg.histogram("test.lat").record(200);
        assert_eq!(reg.histogram("test.lat").count(), 2);
        reg.counter("test.a").inc();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["test.a", "test.lat"], "sorted by name");
        match &snap[1].value {
            MetricValue::Histogram(h) => assert_eq!(h.count, 2),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn reset_zeroes_values_but_keeps_names() {
        let reg = MetricsRegistry::new();
        reg.counter("test.r").add(9);
        reg.histogram("test.h").record(5);
        reg.reset();
        assert_eq!(reg.counter("test.r").get(), 0);
        assert_eq!(reg.histogram("test.h").count(), 0);
        assert_eq!(reg.snapshot().len(), 2);
    }

    #[test]
    fn concurrent_registration_of_same_name_aliases() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = std::sync::Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    reg.counter("race.count").inc();
                }
            }));
        }
        for h in handles {
            h.join().expect("registration thread must not panic");
        }
        assert_eq!(reg.counter("race.count").get(), 8000);
    }

    #[test]
    fn many_distinct_names_probe_without_collision_loss() {
        let reg = MetricsRegistry::new();
        let names: Vec<&'static str> = (0..100)
            .map(|i| -> &'static str { String::leak(format!("bulk.metric.{i}")) })
            .collect();
        for (i, name) in names.iter().enumerate() {
            reg.counter(name).add(i as u64);
        }
        for (i, name) in names.iter().enumerate() {
            assert_eq!(reg.counter(name).get(), i as u64, "{name}");
        }
        assert_eq!(reg.snapshot().len(), 100);
    }
}
