//! Streaming mean/variance/max via Welford's algorithm, plus the
//! per-tap discrepancy telemetry built on it.
//!
//! Deep Validation's signal *is* the per-layer discrepancy between a
//! recovered layer specification and the live activation; this module
//! keeps a running mean/variance/max of that signal per probe tap (the
//! observability analogue of the paper's Table VI), cheap enough to stay
//! on in production. Updates go to single-writer per-thread cells (see
//! [`crate::span`]); lanes are merged with Chan et al.'s parallel
//! combination rule at export time, which is exact, so the merged
//! moments equal a single-stream computation up to float rounding.

#[cfg(feature = "trace")]
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Running count/mean/M2/max over a stream of `f32` samples.
#[derive(Debug, Clone, Copy)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    max: f32,
}

impl Welford {
    /// An empty accumulator.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            max: f32::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f32) {
        self.count += 1;
        let xf = f64::from(x);
        let d = xf - self.mean;
        self.mean += d / self.count as f64;
        let d2 = xf - self.mean;
        self.m2 += d * d2;
        if x > self.max {
            self.max = x;
        }
    }

    /// Combines another accumulator into this one (Chan et al.), exact
    /// for the tracked moments.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.count += other.count;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (M2 / n), or 0 when empty.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Largest sample, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl Default for Welford {
    fn default() -> Self {
        Self::new()
    }
}

/// Maps `f32` onto `u32` such that the unsigned order of keys equals the
/// total order of the floats (IEEE-754 trick: flip all bits of
/// negatives, flip the sign bit of non-negatives). Lets `fetch_max`
/// track a float maximum monotonically.
#[cfg(feature = "trace")]
#[must_use]
pub(crate) fn f32_key(x: f32) -> u32 {
    let b = x.to_bits();
    if b >> 31 == 1 {
        !b
    } else {
        b | 0x8000_0000
    }
}

/// Inverse of [`f32_key`].
#[cfg(feature = "trace")]
#[must_use]
pub(crate) fn key_f32(k: u32) -> f32 {
    if k >> 31 == 1 {
        f32::from_bits(k & 0x7fff_ffff)
    } else {
        f32::from_bits(!k)
    }
}

/// A single-writer Welford cell readable from other threads.
///
/// The owning thread is the only writer; `update` is a plain
/// load-compute-store on each atomic field, so no RMW loop is needed.
/// Concurrent readers may observe a mid-update mix of fields — exports
/// taken at quiescent points (end of a bench run, after server
/// shutdown) are exact, mid-flight reads are approximate monitoring.
#[cfg(feature = "trace")]
pub(crate) struct AtomicWelford {
    count: AtomicU64,
    mean_bits: AtomicU64,
    m2_bits: AtomicU64,
    max_key: AtomicU32,
}

#[cfg(feature = "trace")]
impl AtomicWelford {
    pub(crate) const fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            mean_bits: AtomicU64::new(0),
            m2_bits: AtomicU64::new(0),
            max_key: AtomicU32::new(0),
        }
    }

    /// Adds one sample. Must only be called from the owning thread.
    pub(crate) fn update(&self, x: f32) {
        let mut w = Welford {
            count: self.count.load(Ordering::SeqCst),
            mean: f64::from_bits(self.mean_bits.load(Ordering::SeqCst)),
            m2: f64::from_bits(self.m2_bits.load(Ordering::SeqCst)),
            max: f32::NEG_INFINITY, // tracked separately via max_key
        };
        w.push(x);
        self.mean_bits.store(w.mean.to_bits(), Ordering::SeqCst);
        self.m2_bits.store(w.m2.to_bits(), Ordering::SeqCst);
        // max_key is monotone, so fetch_max is safe even under racy
        // reads; count is published last so readers undercount rather
        // than see moments for samples not yet folded in.
        self.max_key.fetch_max(f32_key(x), Ordering::SeqCst);
        self.count.store(w.count, Ordering::SeqCst);
    }

    pub(crate) fn read(&self) -> Welford {
        let count = self.count.load(Ordering::SeqCst);
        Welford {
            count,
            mean: f64::from_bits(self.mean_bits.load(Ordering::SeqCst)),
            m2: f64::from_bits(self.m2_bits.load(Ordering::SeqCst)),
            max: if count == 0 {
                f32::NEG_INFINITY
            } else {
                key_f32(self.max_key.load(Ordering::SeqCst))
            },
        }
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::SeqCst);
        self.mean_bits.store(0, Ordering::SeqCst);
        self.m2_bits.store(0, Ordering::SeqCst);
        self.max_key.store(0, Ordering::SeqCst);
    }
}

/// Per-tap discrepancy summary, merged across all recording threads.
#[derive(Debug, Clone, Copy)]
pub struct TapSummary {
    /// Probe tap index (position in the plan's probe list).
    pub tap: usize,
    /// Number of recorded discrepancies.
    pub count: u64,
    /// Running mean.
    pub mean: f64,
    /// Running population variance.
    pub variance: f64,
    /// Largest recorded discrepancy.
    pub max: f32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(xs: &[f32]) -> (f64, f64, f32) {
        let n = xs.len() as f64;
        let mean = xs.iter().map(|&x| f64::from(x)).sum::<f64>() / n;
        let var = xs
            .iter()
            .map(|&x| (f64::from(x) - mean).powi(2))
            .sum::<f64>()
            / n;
        let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        (mean, var, max)
    }

    #[test]
    fn welford_matches_naive_two_pass() {
        let xs = [3.5f32, -1.25, 0.0, 7.75, 2.5, -0.5, 100.0, 3.25];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let (mean, var, max) = naive(&xs);
        assert!((w.mean() - mean).abs() < 1e-9, "{} vs {mean}", w.mean());
        assert!((w.variance() - var).abs() < 1e-6);
        assert!((w.max() - max).abs() < f32::EPSILON);
        assert_eq!(w.count(), xs.len() as u64);
    }

    #[test]
    fn merge_equals_single_stream() {
        let xs = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let (a, b) = xs.split_at(4);
        let mut wa = Welford::new();
        let mut wb = Welford::new();
        for &x in a {
            wa.push(x);
        }
        for &x in b {
            wb.push(x);
        }
        wa.merge(&wb);
        assert_eq!(wa.count(), whole.count());
        assert!((wa.mean() - whole.mean()).abs() < 1e-12);
        assert!((wa.variance() - whole.variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_sides_is_identity() {
        let mut w = Welford::new();
        w.push(2.0);
        let empty = Welford::new();
        let mut left = empty;
        left.merge(&w);
        assert_eq!(left.count(), 1);
        w.merge(&empty);
        assert_eq!(w.count(), 1);
        assert!((w.mean() - 2.0).abs() < 1e-12);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn f32_key_preserves_order() {
        let vals = [
            f32::NEG_INFINITY,
            -1e30,
            -2.5,
            -0.0,
            0.0,
            1e-20,
            2.5,
            1e30,
            f32::INFINITY,
        ];
        for pair in vals.windows(2) {
            assert!(
                f32_key(pair[0]) <= f32_key(pair[1]),
                "key order broken at {pair:?}"
            );
        }
        for &v in &vals {
            let rt = key_f32(f32_key(v));
            assert_eq!(rt.to_bits(), v.to_bits(), "round trip at {v}");
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn atomic_welford_matches_plain() {
        let cell = AtomicWelford::new();
        let xs = [0.5f32, 1.5, -3.0, 8.0];
        let mut plain = Welford::new();
        for &x in &xs {
            cell.update(x);
            plain.push(x);
        }
        let got = cell.read();
        assert_eq!(got.count(), plain.count());
        assert!((got.mean() - plain.mean()).abs() < 1e-12);
        assert!((got.variance() - plain.variance()).abs() < 1e-12);
        assert!((got.max() - plain.max()).abs() < f32::EPSILON);
        cell.reset();
        assert_eq!(cell.read().count(), 0);
    }
}
