//! Cross-thread request timeline stitching.
//!
//! Lifecycle events ([`record_event`](crate::record_event)) land on
//! whichever thread's ring happens to run the request at that moment:
//! the client thread records `serve.enqueued`, a worker records
//! `serve.dequeued` through `serve.responded`, and a *respawned* worker
//! records the retry after a crash. [`stitch`] reassembles them into
//! per-request timelines by trace id, ordered by the global `SeqCst`
//! sequence (a total order even when clock stamps tie across lanes), and
//! [`segments`] decomposes a served request's wall time into the
//! queue-wait / coalesce-wait / score / respond partition that
//! `latency_audit` asserts sums to the end-to-end latency within 1%.
//!
//! The event vocabulary is fixed here (the [`lifecycle`] constants) so
//! the emitter (dv-serve), the exporters, and consumers agree on names
//! without a dependency cycle.

use std::collections::BTreeMap;

use crate::span::TraceSnapshot;

/// The lifecycle event names dv-serve emits, in rough causal order.
/// Call sites pass the literal string (dv-lint R11 requires literal
/// dotted-lowercase names); these constants are the consumer-side
/// contract.
pub mod lifecycle {
    /// Request accepted by `try_submit`, recorded on the client thread.
    pub const ENQUEUED: &str = "serve.enqueued";
    /// Request popped off the bounded queue by a worker.
    pub const DEQUEUED: &str = "serve.dequeued";
    /// Request admitted to a coalesced batch; `arg` = batch width.
    pub const BATCH_JOINED: &str = "serve.batch_joined";
    /// Request parked in the crash-retry pen to be served singly.
    pub const PARKED: &str = "serve.parked";
    /// Parked request re-served by a respawned incarnation after a crash.
    pub const RETRIED: &str = "serve.retried";
    /// Scoring started; `arg` = the `ServedVia` code.
    pub const SCORE_BEGIN: &str = "serve.score_begin";
    /// Scoring finished.
    pub const SCORE_END: &str = "serve.score_end";
    /// Request served below the full-joint rung; `arg` = `ServedVia` code.
    pub const DEGRADED: &str = "serve.degraded";
    /// The worker serving this request panicked (terminal or pre-retry).
    pub const CRASHED: &str = "serve.crashed";
    /// Response fulfilled.
    pub const RESPONDED: &str = "serve.responded";
    /// Drift breaker opened; the trace id is the observation that
    /// tripped it.
    pub const BREAKER_OPEN: &str = "serve.breaker_open";
    /// Drift breaker closed; the trace id is the clearing observation.
    pub const BREAKER_CLOSE: &str = "serve.breaker_close";
}

/// One lifecycle event on a stitched timeline.
#[derive(Debug, Clone, Copy)]
pub struct TimelineEvent {
    /// Event name (one of the [`lifecycle`] constants for dv-serve).
    pub name: &'static str,
    /// Lane (thread) the event was recorded on.
    pub lane: usize,
    /// Global sequence number (the stitch order).
    pub seq: u64,
    /// Timestamp, nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Event payload (batch width, `ServedVia` code, ...).
    pub arg: u64,
    /// Causal parent event ref (0 = chain root).
    pub parent: u64,
}

/// Every lifecycle event of one request, across all threads, in global
/// sequence order.
#[derive(Debug, Clone)]
pub struct RequestTimeline {
    /// The request's trace id (sequence number + 1).
    pub trace: u64,
    /// Events in global `SeqCst` order.
    pub events: Vec<TimelineEvent>,
}

impl RequestTimeline {
    /// First event with `name`, in stitch order.
    #[must_use]
    pub fn first(&self, name: &str) -> Option<&TimelineEvent> {
        self.events.iter().find(|e| e.name == name)
    }

    /// Last event with `name`, in stitch order.
    #[must_use]
    pub fn last(&self, name: &str) -> Option<&TimelineEvent> {
        self.events.iter().rev().find(|e| e.name == name)
    }
}

/// Reassembles per-request timelines from a [`TraceSnapshot`]: instant
/// events carrying a trace id are grouped by trace and ordered by the
/// global sequence number, so one request's path is readable even when
/// it crossed the client thread, a worker, and a respawned worker.
/// Timelines come back sorted by trace id (= submission order).
#[must_use]
pub fn stitch(snap: &TraceSnapshot) -> Vec<RequestTimeline> {
    let mut by_trace: BTreeMap<u64, Vec<TimelineEvent>> = BTreeMap::new();
    for lane in &snap.lanes {
        for s in &lane.spans {
            if s.is_event && s.trace != 0 {
                by_trace.entry(s.trace).or_default().push(TimelineEvent {
                    name: s.name,
                    lane: lane.lane,
                    seq: s.seq,
                    ts_ns: s.start_ns,
                    arg: s.arg,
                    parent: s.parent,
                });
            }
        }
    }
    by_trace
        .into_iter()
        .map(|(trace, mut events)| {
            events.sort_by_key(|e| e.seq);
            RequestTimeline { trace, events }
        })
        .collect()
}

/// A served request's wall time, decomposed along its timeline. The
/// four segments telescope: they sum *exactly* to `total_ns`, because
/// each boundary timestamp is shared by the segments on either side —
/// retry/crash gaps fold into `coalesce_wait_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segments {
    /// Enqueue to first dequeue.
    pub queue_wait_ns: u64,
    /// First dequeue to the (last) score start: batch assembly, parking,
    /// and any crash-retry gap.
    pub coalesce_wait_ns: u64,
    /// Last score start to last score end.
    pub score_ns: u64,
    /// Last score end to the response.
    pub respond_ns: u64,
    /// Enqueue to response (the segments' telescoped sum).
    pub total_ns: u64,
}

/// Decomposes a timeline into [`Segments`]. `None` when the request
/// never completed the enqueue → dequeue → score → respond path (it
/// expired, crashed terminally, or was shed), or when its anchor
/// timestamps are not monotone (a torn mid-flight snapshot).
#[must_use]
pub fn segments(tl: &RequestTimeline) -> Option<Segments> {
    let enq = tl.first(lifecycle::ENQUEUED)?.ts_ns;
    let deq = tl.first(lifecycle::DEQUEUED)?.ts_ns;
    // Last, not first: a crashed batch member's retry re-scores it, and
    // the response comes from the final attempt.
    let begin = tl.last(lifecycle::SCORE_BEGIN)?.ts_ns;
    let end = tl.last(lifecycle::SCORE_END)?.ts_ns;
    let resp = tl.last(lifecycle::RESPONDED)?.ts_ns;
    if !(enq <= deq && deq <= begin && begin <= end && end <= resp) {
        return None;
    }
    Some(Segments {
        queue_wait_ns: deq - enq,
        coalesce_wait_ns: begin - deq,
        score_ns: end - begin,
        respond_ns: resp - end,
        total_ns: resp - enq,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{LaneSnapshot, SpanRecord};

    fn ev(name: &'static str, seq: u64, ts_ns: u64, trace: u64, parent: u64) -> SpanRecord {
        SpanRecord {
            name,
            seq,
            depth: 0,
            start_ns: ts_ns,
            dur_ns: 0,
            trace,
            parent,
            arg: 0,
            is_event: true,
        }
    }

    fn snap(lanes: Vec<(usize, Vec<SpanRecord>)>) -> TraceSnapshot {
        TraceSnapshot {
            lanes: lanes
                .into_iter()
                .map(|(lane, spans)| LaneSnapshot {
                    lane,
                    thread_name: format!("lane-{lane}"),
                    spans,
                })
                .collect(),
            dropped: 0,
        }
    }

    #[test]
    fn stitch_groups_by_trace_across_lanes_in_seq_order() {
        // Trace 1 crosses lanes 0 and 2; trace 2 lives on lane 2 only;
        // a plain span and a trace-less event must be ignored.
        let mut span = ev("nn.forward", 10, 50, 0, 0);
        span.is_event = false;
        span.dur_ns = 5;
        let s = snap(vec![
            (0, vec![ev(lifecycle::ENQUEUED, 1, 100, 1, 0), span]),
            (
                2,
                vec![
                    ev(lifecycle::RESPONDED, 5, 400, 1, 3),
                    ev(lifecycle::DEQUEUED, 3, 200, 1, 2),
                    ev(lifecycle::ENQUEUED, 4, 300, 2, 0),
                ],
            ),
        ]);
        let timelines = stitch(&s);
        assert_eq!(timelines.len(), 2);
        assert_eq!(timelines[0].trace, 1);
        let names: Vec<_> = timelines[0].events.iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec![
                lifecycle::ENQUEUED,
                lifecycle::DEQUEUED,
                lifecycle::RESPONDED
            ],
            "events come back in global sequence order"
        );
        assert_eq!(timelines[0].events[0].lane, 0);
        assert_eq!(timelines[0].events[1].lane, 2);
        assert_eq!(timelines[1].trace, 2);
        assert_eq!(timelines[1].events.len(), 1);
    }

    #[test]
    fn segments_telescope_to_the_total() {
        let s = snap(vec![(
            0,
            vec![
                ev(lifecycle::ENQUEUED, 1, 1_000, 9, 0),
                ev(lifecycle::DEQUEUED, 2, 1_500, 9, 2),
                ev(lifecycle::SCORE_BEGIN, 3, 1_900, 9, 3),
                ev(lifecycle::SCORE_END, 4, 4_000, 9, 4),
                ev(lifecycle::RESPONDED, 5, 4_100, 9, 5),
            ],
        )]);
        let timelines = stitch(&s);
        let seg = segments(&timelines[0]).expect("complete timeline");
        assert_eq!(seg.queue_wait_ns, 500);
        assert_eq!(seg.coalesce_wait_ns, 400);
        assert_eq!(seg.score_ns, 2_100);
        assert_eq!(seg.respond_ns, 100);
        assert_eq!(seg.total_ns, 3_100);
        assert_eq!(
            seg.queue_wait_ns + seg.coalesce_wait_ns + seg.score_ns + seg.respond_ns,
            seg.total_ns,
            "the partition telescopes exactly"
        );
    }

    #[test]
    fn crash_retry_uses_the_final_attempt_for_scoring() {
        // First attempt's score_begin (seq 3) is aborted by a crash; the
        // retry scores again on another lane. Segments must anchor on
        // the *last* score pair, folding the crash gap into coalesce.
        let s = snap(vec![
            (
                1,
                vec![
                    ev(lifecycle::DEQUEUED, 2, 200, 4, 1),
                    ev(lifecycle::SCORE_BEGIN, 3, 300, 4, 2),
                    ev(lifecycle::CRASHED, 4, 350, 4, 3),
                ],
            ),
            (
                3,
                vec![
                    ev(lifecycle::RETRIED, 5, 900, 4, 4),
                    ev(lifecycle::SCORE_BEGIN, 6, 950, 4, 5),
                    ev(lifecycle::SCORE_END, 7, 1_200, 4, 6),
                    ev(lifecycle::RESPONDED, 8, 1_250, 4, 7),
                ],
            ),
            (0, vec![ev(lifecycle::ENQUEUED, 1, 100, 4, 0)]),
        ]);
        let timelines = stitch(&s);
        let seg = segments(&timelines[0]).expect("retried request completes");
        assert_eq!(seg.queue_wait_ns, 100);
        assert_eq!(seg.coalesce_wait_ns, 750, "crash gap folds into coalesce");
        assert_eq!(seg.score_ns, 250);
        assert_eq!(seg.respond_ns, 50);
        assert_eq!(seg.total_ns, 1_150);
    }

    #[test]
    fn incomplete_timelines_yield_no_segments() {
        let s = snap(vec![(
            0,
            vec![
                ev(lifecycle::ENQUEUED, 1, 100, 7, 0),
                ev(lifecycle::DEQUEUED, 2, 200, 7, 1),
                ev(lifecycle::CRASHED, 3, 300, 7, 2),
            ],
        )]);
        let timelines = stitch(&s);
        assert!(
            segments(&timelines[0]).is_none(),
            "no score/respond anchors"
        );
    }
}
