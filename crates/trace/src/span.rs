//! Scoped spans recorded into fixed-size per-thread ring buffers.
//!
//! A [`TraceGuard`] stamps the monotonic clock on construction and on
//! drop, then appends one entry to the calling thread's ring. Each
//! thread owns exactly one lane: a leaked, fixed-capacity array of
//! all-atomic entries, registered in a global lane table so exporters
//! can walk every lane without locks. A single writer (the owning
//! thread) mutates a lane; readers only load atomics, so mid-flight
//! snapshots are racy-but-sound, and quiescent snapshots are exact.
//!
//! Entries carry a global `SeqCst` sequence number, so the merged trace
//! has a total order even when two lanes' clock stamps tie.
//!
//! With the `trace` cargo feature off (the default), `TraceGuard` is a
//! zero-sized type with empty drop glue and every function here is an
//! inlineable no-op: the serving path carries no clock reads, no atomics
//! and no allocations. The zero-cost claim is enforced by
//! `crates/core/tests/zero_alloc.rs` and the plan-equivalence suites,
//! which CI runs with the feature both off and on.

use crate::welford::TapSummary;

/// Maximum probe taps tracked by discrepancy telemetry.
pub const MAX_TAPS: usize = 32;

/// Spans retained per thread lane (older entries are overwritten and
/// counted as dropped).
pub const RING_CAP: usize = 1 << 13;

/// Maximum thread lanes; threads beyond this record nothing (counted as
/// dropped lanes in [`TraceSnapshot::dropped`]). Sized for the
/// fault-injection soak: every respawned worker incarnation claims a
/// fresh lane, and a 4000-request run sees ~90 crashes.
pub const MAX_LANES: usize = 128;

/// A request-scoped trace identity: follows one request across every
/// thread it touches (client submit, worker, respawned worker). 0 is
/// reserved for "no trace"; [`TraceId::from_seq`] derives the id
/// deterministically from the request sequence number, so the same
/// request stream yields the same trace ids at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The "not request-scoped" sentinel.
    pub const NONE: TraceId = TraceId(0);

    /// The trace id of the request with sequence number `seq`
    /// (`seq + 1`, so sequence 0 is distinguishable from NONE).
    #[must_use]
    pub const fn from_seq(seq: u64) -> Self {
        TraceId(seq + 1)
    }

    /// Whether this is the NONE sentinel.
    #[must_use]
    pub const fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// A reference to a previously recorded lifecycle event, used as the
/// *causal parent* of the next event on the same request: chaining them
/// reconstructs the request's cross-thread path even when wall-clock
/// stamps tie. 0 ([`EventRef::NONE`]) means "no parent" — the chain
/// root, or an event that was sampled out / compiled out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRef(pub u64);

impl EventRef {
    /// The "no parent" sentinel.
    pub const NONE: EventRef = EventRef(0);
}

/// Is span recording compiled in?
#[must_use]
pub const fn tracing_enabled() -> bool {
    cfg!(feature = "trace")
}

/// A scoped timer: stamps the clock on construction, records a span on
/// drop. Construct via [`TraceGuard::enter`] or the [`span!`](crate::span!)
/// macro. Zero-sized and drop-free when the `trace` feature is off.
#[must_use = "a span measures the scope its guard lives in; bind it with `let`"]
pub struct TraceGuard {
    #[cfg(feature = "trace")]
    name: &'static str,
    #[cfg(feature = "trace")]
    start_ns: u64,
    #[cfg(feature = "trace")]
    depth: u32,
}

impl TraceGuard {
    /// Opens a span named `name` covering the guard's lifetime.
    #[inline]
    pub fn enter(name: &'static str) -> Self {
        #[cfg(feature = "trace")]
        {
            Self {
                name,
                start_ns: crate::time::now_ns(),
                depth: imp::push_depth(),
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = name;
            Self {}
        }
    }
}

impl Drop for TraceGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "trace")]
        {
            let end_ns = crate::time::now_ns();
            imp::pop_depth();
            imp::record(self.name, self.start_ns, end_ns, self.depth, 0, 0, 0, false);
        }
    }
}

/// Opens a span covering the rest of the enclosing scope.
///
/// ```
/// fn hot_path() {
///     dv_trace::span!("stage.example");
///     // ... timed work ...
/// }
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _dv_span_guard = $crate::TraceGuard::enter($name);
    };
}

/// Scoped span-sampling switch: while a guard constructed with
/// `record = false` is alive, spans opened on this thread (via
/// [`span!`](crate::span!), [`TraceGuard::enter`], or [`record_raw`])
/// are silently skipped. Restores the previous state on drop, so scopes
/// nest. Zero-sized no-op with the `trace` feature off.
///
/// This is the mechanism behind deterministic 1-in-N request sampling
/// (`DV_TRACE_SAMPLE`): the caller decides from the request *sequence
/// number* whether to record, so the sampled set is identical at any
/// thread count. Only spans are gated — discrepancy telemetry and
/// metrics counters stay always-on.
#[must_use = "sampling is scoped to the guard's lifetime; bind it with `let`"]
pub struct SampleGuard {
    #[cfg(feature = "trace")]
    prev: bool,
}

/// Enters a sampling scope: spans on this thread record only if
/// `record` is true (and no enclosing scope suppressed them).
#[inline]
pub fn sample_scope(record: bool) -> SampleGuard {
    #[cfg(feature = "trace")]
    {
        SampleGuard {
            prev: imp::push_suppress(!record),
        }
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = record;
        SampleGuard {}
    }
}

impl Drop for SampleGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "trace")]
        {
            imp::restore_suppress(self.prev);
        }
    }
}

/// Records a span from explicit clock stamps (taken with
/// [`now_ns`](crate::now_ns)) onto the *calling* thread's lane. For
/// intervals that straddle threads — e.g. queue wait measured at
/// dequeue — where a scoped guard cannot live.
#[inline]
pub fn record_raw(name: &'static str, start_ns: u64, end_ns: u64) {
    #[cfg(feature = "trace")]
    {
        imp::record(name, start_ns, end_ns, imp::current_depth(), 0, 0, 0, false);
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (name, start_ns, end_ns);
    }
}

/// Records an instant lifecycle event for request `trace` on the
/// *calling* thread's lane, causally chained to `parent` (the
/// [`EventRef`] returned by the request's previous event, or
/// [`EventRef::NONE`] at the chain root). `arg` carries a small event
/// payload — batch width for `batch_joined`, the `ServedVia` code for
/// `score_begin` — and the returned ref becomes the next event's parent.
///
/// Allocation-free (the ring and intern table are pre-sized), honors
/// [`sample_scope`] like spans do (a sampled-out event returns
/// [`EventRef::NONE`]), and compiles to a no-op returning NONE — no
/// clock read, no atomics — when the `trace` feature is off.
#[inline]
pub fn record_event(name: &'static str, trace: TraceId, parent: EventRef, arg: u64) -> EventRef {
    #[cfg(feature = "trace")]
    {
        let now = crate::time::now_ns();
        EventRef(imp::record(
            name,
            now,
            now,
            imp::current_depth(),
            trace.0,
            parent.0,
            arg,
            true,
        ))
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (name, trace, parent, arg);
        EventRef::NONE
    }
}

/// Feeds one per-layer discrepancy sample into the calling thread's
/// telemetry cell for `tap`. Taps at or beyond [`MAX_TAPS`] are ignored.
#[inline]
pub fn record_discrepancy(tap: usize, value: f32) {
    #[cfg(feature = "trace")]
    {
        imp::record_discrepancy(tap, value);
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (tap, value);
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy)]
pub struct SpanRecord {
    /// Span name (the string passed to [`TraceGuard::enter`]).
    pub name: &'static str,
    /// Global sequence number (total order across lanes).
    pub seq: u64,
    /// Nesting depth on the recording thread at entry.
    pub depth: u32,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Request trace id ([`TraceId`]), 0 for plain spans.
    pub trace: u64,
    /// Causal parent ([`EventRef`], = the parent's `seq + 1`), 0 = root.
    pub parent: u64,
    /// Small event payload (batch width, `ServedVia` code, ...).
    pub arg: u64,
    /// True for instant lifecycle events (zero duration, carry a trace
    /// id), false for scoped duration spans.
    pub is_event: bool,
}

impl SpanRecord {
    /// This record's [`EventRef`] (valid as another record's `parent`).
    #[must_use]
    pub const fn event_ref(&self) -> u64 {
        self.seq + 1
    }
}

/// All spans recorded on one thread lane.
#[derive(Debug, Clone)]
pub struct LaneSnapshot {
    /// Lane index (stable for the thread's lifetime).
    pub lane: usize,
    /// OS thread name at lane creation (chrome-trace thread label).
    pub thread_name: String,
    /// Spans sorted by start time (ties: longer span first, then
    /// shallower depth), so parents precede their children.
    pub spans: Vec<SpanRecord>,
}

/// A point-in-time copy of every lane.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Per-thread lanes, in lane order.
    pub lanes: Vec<LaneSnapshot>,
    /// Spans lost to ring wrap, name-table overflow, or lane exhaustion.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Total spans across all lanes.
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.lanes.iter().map(|l| l.spans.len()).sum()
    }
}

/// Copies every lane's recorded spans. Exact when recording threads are
/// quiescent; racy-but-sound (atomic loads only) otherwise.
#[must_use]
pub fn snapshot() -> TraceSnapshot {
    #[cfg(feature = "trace")]
    {
        imp::snapshot()
    }
    #[cfg(not(feature = "trace"))]
    {
        TraceSnapshot {
            lanes: Vec::new(),
            dropped: 0,
        }
    }
}

/// Per-tap discrepancy telemetry merged across all lanes, sorted by tap.
/// Empty when the `trace` feature is off or nothing was recorded.
#[must_use]
pub fn discrepancy_summary() -> Vec<TapSummary> {
    #[cfg(feature = "trace")]
    {
        imp::discrepancy_summary()
    }
    #[cfg(not(feature = "trace"))]
    {
        Vec::new()
    }
}

/// Clears every lane and the global sequence counter. Only meaningful at
/// quiescent points (between bench phases); concurrent recorders may
/// interleave with the clear.
pub fn reset() {
    #[cfg(feature = "trace")]
    {
        imp::reset();
    }
}

#[cfg(feature = "trace")]
mod imp {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
    use std::sync::OnceLock;

    use super::{LaneSnapshot, SpanRecord, TraceSnapshot, MAX_LANES, MAX_TAPS, RING_CAP};
    use crate::welford::{AtomicWelford, TapSummary, Welford};

    /// Distinct span names per process (names beyond this drop spans).
    const NAME_SLOTS: usize = 512;

    struct Entry {
        name_id: AtomicU32,
        depth: AtomicU32,
        seq: AtomicU64,
        start_ns: AtomicU64,
        dur_ns: AtomicU64,
        trace: AtomicU64,
        parent: AtomicU64,
        arg: AtomicU64,
        /// 0 = duration span, 1 = instant lifecycle event.
        kind: AtomicU32,
    }

    impl Entry {
        const fn new() -> Self {
            Self {
                name_id: AtomicU32::new(0),
                depth: AtomicU32::new(0),
                seq: AtomicU64::new(0),
                start_ns: AtomicU64::new(0),
                dur_ns: AtomicU64::new(0),
                trace: AtomicU64::new(0),
                parent: AtomicU64::new(0),
                arg: AtomicU64::new(0),
                kind: AtomicU32::new(0),
            }
        }
    }

    struct ThreadRing {
        lane: usize,
        thread_name: String,
        /// Total spans ever written; `head % RING_CAP` is the next slot.
        head: AtomicU64,
        entries: Vec<Entry>,
        taps: [AtomicWelford; MAX_TAPS],
    }

    impl ThreadRing {
        fn new(lane: usize) -> Self {
            let thread_name = std::thread::current()
                .name()
                .map(String::from)
                .unwrap_or_else(|| format!("thread-{lane}"));
            Self {
                lane,
                thread_name,
                head: AtomicU64::new(0),
                entries: (0..RING_CAP).map(|_| Entry::new()).collect(),
                taps: [const { AtomicWelford::new() }; MAX_TAPS],
            }
        }
    }

    /// Global lane table: set-once pointers to leaked rings (one leak
    /// per recording thread, bounded by MAX_LANES).
    static LANES: [OnceLock<&'static ThreadRing>; MAX_LANES] =
        [const { OnceLock::new() }; MAX_LANES];
    static NEXT_LANE: AtomicUsize = AtomicUsize::new(0);
    /// Spans dropped for want of a lane or a name slot.
    static DROPPED: AtomicU64 = AtomicU64::new(0);
    /// Global span sequence: totally orders spans across lanes.
    static GLOBAL_SEQ: AtomicU64 = AtomicU64::new(0);
    /// Span-name intern table: index = the `name_id` entries store.
    static NAMES: [OnceLock<&'static str>; NAME_SLOTS] = [const { OnceLock::new() }; NAME_SLOTS];

    #[derive(Clone, Copy)]
    enum RingState {
        Unset,
        Exhausted,
        Ready(&'static ThreadRing),
    }

    thread_local! {
        static RING: Cell<RingState> = const { Cell::new(RingState::Unset) };
        static DEPTH: Cell<u32> = const { Cell::new(0) };
        /// True while a [`super::SampleGuard`] has sampled this
        /// thread's current request *out*.
        static SUPPRESS: Cell<bool> = const { Cell::new(false) };
    }

    /// Sets the suppression flag (OR-ed with any enclosing scope) and
    /// returns the previous value for [`restore_suppress`].
    pub(super) fn push_suppress(suppress: bool) -> bool {
        SUPPRESS.with(|s| {
            let prev = s.get();
            s.set(prev || suppress);
            prev
        })
    }

    pub(super) fn restore_suppress(prev: bool) {
        SUPPRESS.with(|s| s.set(prev));
    }

    pub(super) fn push_depth() -> u32 {
        DEPTH.with(|d| {
            let v = d.get();
            d.set(v.saturating_add(1));
            v
        })
    }

    pub(super) fn pop_depth() {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }

    pub(super) fn current_depth() -> u32 {
        DEPTH.with(Cell::get)
    }

    fn current_ring() -> Option<&'static ThreadRing> {
        RING.with(|r| match r.get() {
            RingState::Ready(ring) => Some(ring),
            RingState::Exhausted => None,
            RingState::Unset => {
                let lane = NEXT_LANE.fetch_add(1, Ordering::SeqCst);
                if lane >= MAX_LANES {
                    DROPPED.fetch_add(1, Ordering::SeqCst);
                    r.set(RingState::Exhausted);
                    return None;
                }
                let ring: &'static ThreadRing = Box::leak(Box::new(ThreadRing::new(lane)));
                LANES[lane]
                    .set(ring)
                    .ok()
                    .expect("lane index is claimed by exactly one thread");
                r.set(RingState::Ready(ring));
                Some(ring)
            }
        })
    }

    /// Interns `name` by pointer identity (duplicate literals in other
    /// codegen units get their own id; exporters aggregate by text).
    fn intern(name: &'static str) -> Option<u32> {
        let mut idx =
            (name.as_ptr() as usize).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48 & (NAME_SLOTS - 1);
        for _ in 0..NAME_SLOTS {
            let got = NAMES[idx].get_or_init(|| name);
            if got.as_ptr() == name.as_ptr() && got.len() == name.len() {
                return Some(idx as u32);
            }
            idx = (idx + 1) % NAME_SLOTS;
        }
        None
    }

    /// Stamps one ring slot. Returns the record's event ref (`seq + 1`)
    /// for causal chaining, or 0 when the record was suppressed or
    /// dropped.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn record(
        name: &'static str,
        start_ns: u64,
        end_ns: u64,
        depth: u32,
        trace: u64,
        parent: u64,
        arg: u64,
        is_event: bool,
    ) -> u64 {
        if SUPPRESS.with(Cell::get) {
            // Sampled out by a SampleGuard: intentionally unrecorded,
            // not "dropped" — the dropped counter tracks lost data.
            return 0;
        }
        let Some(ring) = current_ring() else {
            return 0;
        };
        let Some(name_id) = intern(name) else {
            DROPPED.fetch_add(1, Ordering::SeqCst);
            return 0;
        };
        let seq = GLOBAL_SEQ.fetch_add(1, Ordering::SeqCst);
        let head = ring.head.load(Ordering::SeqCst);
        let entry = &ring.entries[(head % RING_CAP as u64) as usize];
        entry.name_id.store(name_id, Ordering::SeqCst);
        entry.depth.store(depth, Ordering::SeqCst);
        entry.seq.store(seq, Ordering::SeqCst);
        entry.start_ns.store(start_ns, Ordering::SeqCst);
        entry
            .dur_ns
            .store(end_ns.saturating_sub(start_ns), Ordering::SeqCst);
        entry.trace.store(trace, Ordering::SeqCst);
        entry.parent.store(parent, Ordering::SeqCst);
        entry.arg.store(arg, Ordering::SeqCst);
        entry.kind.store(u32::from(is_event), Ordering::SeqCst);
        // Published last: a racy reader sees the slot only once whole.
        ring.head.store(head + 1, Ordering::SeqCst);
        seq + 1
    }

    pub(super) fn record_discrepancy(tap: usize, value: f32) {
        if tap >= MAX_TAPS {
            return;
        }
        if let Some(ring) = current_ring() {
            ring.taps[tap].update(value);
        }
    }

    fn lanes() -> impl Iterator<Item = &'static ThreadRing> {
        LANES.iter().filter_map(|l| l.get().copied())
    }

    pub(super) fn snapshot() -> TraceSnapshot {
        let mut out = TraceSnapshot {
            lanes: Vec::new(),
            dropped: DROPPED.load(Ordering::SeqCst),
        };
        for ring in lanes() {
            let head = ring.head.load(Ordering::SeqCst);
            let kept = head.min(RING_CAP as u64);
            out.dropped += head - kept;
            let mut spans = Vec::with_capacity(kept as usize);
            for i in head - kept..head {
                let entry = &ring.entries[(i % RING_CAP as u64) as usize];
                let name_id = entry.name_id.load(Ordering::SeqCst) as usize;
                let name = NAMES
                    .get(name_id)
                    .and_then(|slot| slot.get())
                    .copied()
                    .unwrap_or("<unknown>");
                spans.push(SpanRecord {
                    name,
                    seq: entry.seq.load(Ordering::SeqCst),
                    depth: entry.depth.load(Ordering::SeqCst),
                    start_ns: entry.start_ns.load(Ordering::SeqCst),
                    dur_ns: entry.dur_ns.load(Ordering::SeqCst),
                    trace: entry.trace.load(Ordering::SeqCst),
                    parent: entry.parent.load(Ordering::SeqCst),
                    arg: entry.arg.load(Ordering::SeqCst),
                    is_event: entry.kind.load(Ordering::SeqCst) == 1,
                });
            }
            // Parents before children: earlier start first; on ties the
            // longer (enclosing) span, then the shallower one.
            spans.sort_by(|a, b| {
                a.start_ns
                    .cmp(&b.start_ns)
                    .then(b.dur_ns.cmp(&a.dur_ns))
                    .then(a.depth.cmp(&b.depth))
            });
            out.lanes.push(LaneSnapshot {
                lane: ring.lane,
                thread_name: ring.thread_name.clone(),
                spans,
            });
        }
        out.lanes.sort_by_key(|l| l.lane);
        out
    }

    pub(super) fn discrepancy_summary() -> Vec<TapSummary> {
        let mut merged = [Welford::new(); MAX_TAPS];
        for ring in lanes() {
            for (tap, cell) in ring.taps.iter().enumerate() {
                merged[tap].merge(&cell.read());
            }
        }
        merged
            .iter()
            .enumerate()
            .filter(|(_, w)| w.count() > 0)
            .map(|(tap, w)| TapSummary {
                tap,
                count: w.count(),
                mean: w.mean(),
                variance: w.variance(),
                max: w.max(),
            })
            .collect()
    }

    pub(super) fn reset() {
        for ring in lanes() {
            ring.head.store(0, Ordering::SeqCst);
            for cell in &ring.taps {
                cell.reset();
            }
        }
        DROPPED.store(0, Ordering::SeqCst);
        GLOBAL_SEQ.store(0, Ordering::SeqCst);
    }
}

#[cfg(all(test, not(feature = "trace")))]
mod off_tests {
    use super::*;

    #[test]
    fn guard_is_zero_sized_and_snapshot_empty() {
        assert_eq!(std::mem::size_of::<TraceGuard>(), 0);
        assert_eq!(std::mem::size_of::<SampleGuard>(), 0);
        {
            let _s = sample_scope(true);
            span!("off.should_not_record");
            record_raw("off.raw", 0, 10);
            record_discrepancy(0, 1.0);
        }
        let snap = snapshot();
        assert!(snap.lanes.is_empty());
        assert_eq!(snap.dropped, 0);
        assert!(discrepancy_summary().is_empty());
        assert!(!tracing_enabled());
    }

    /// The event API must be a true no-op when tracing is compiled out:
    /// no clock read, no ring write, and the returned ref is NONE so
    /// causal chains stay inert.
    #[test]
    fn record_event_is_a_none_returning_noop() {
        let parent = record_event("off.enqueued", TraceId::from_seq(7), EventRef::NONE, 3);
        assert_eq!(parent, EventRef::NONE);
        let child = record_event("off.dequeued", TraceId::from_seq(7), parent, 0);
        assert_eq!(child, EventRef::NONE);
        assert!(snapshot().lanes.is_empty());
        assert_eq!(snapshot().dropped, 0);
        // Trace ids themselves are always live (they ride on responses
        // and histogram exemplars even without span recording).
        assert_eq!(TraceId::from_seq(0), TraceId(1));
        assert!(TraceId::NONE.is_none());
    }
}

#[cfg(all(test, feature = "trace"))]
mod on_tests {
    use super::*;
    use std::sync::Mutex;

    /// Span tests share process-global lanes; serialise them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn my_lane_spans(name_filter: &str) -> Vec<SpanRecord> {
        snapshot()
            .lanes
            .into_iter()
            .flat_map(|l| l.spans)
            .filter(|s| s.name.starts_with(name_filter))
            .collect()
    }

    #[test]
    fn nested_spans_record_with_depths_and_order() {
        let _g = locked();
        reset();
        {
            span!("t.outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                span!("t.inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let spans = my_lane_spans("t.");
        assert_eq!(spans.len(), 2, "{spans:?}");
        // Snapshot sorts parents first.
        assert_eq!(spans[0].name, "t.outer");
        assert_eq!(spans[1].name, "t.inner");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].depth, 1);
        // The child drops first, so it takes the earlier sequence slot.
        assert!(spans[1].seq < spans[0].seq);
        assert!(spans[0].start_ns <= spans[1].start_ns);
        let outer_end = spans[0].start_ns + spans[0].dur_ns;
        let inner_end = spans[1].start_ns + spans[1].dur_ns;
        assert!(inner_end <= outer_end, "child must be contained");
        assert!(tracing_enabled());
    }

    #[test]
    fn ring_wrap_keeps_latest_and_counts_dropped() {
        let _g = locked();
        reset();
        let n = RING_CAP + 100;
        for _ in 0..n {
            span!("t.wrap");
        }
        let snap = snapshot();
        let mine: Vec<_> = snap
            .lanes
            .iter()
            .filter(|l| l.spans.iter().any(|s| s.name == "t.wrap"))
            .collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].spans.len(), RING_CAP);
        assert!(snap.dropped >= 100, "dropped {}", snap.dropped);
    }

    #[test]
    fn record_raw_and_reset_round_trip() {
        let _g = locked();
        reset();
        record_raw("t.raw", 100, 400);
        let spans = my_lane_spans("t.raw");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start_ns, 100);
        assert_eq!(spans[0].dur_ns, 300);
        reset();
        assert!(my_lane_spans("t.raw").is_empty());
    }

    #[test]
    fn discrepancy_telemetry_merges_per_tap() {
        let _g = locked();
        reset();
        record_discrepancy(0, 1.0);
        record_discrepancy(0, 3.0);
        record_discrepancy(2, 5.0);
        record_discrepancy(MAX_TAPS + 1, 99.0); // ignored
        let summary = discrepancy_summary();
        assert_eq!(summary.len(), 2, "{summary:?}");
        assert_eq!(summary[0].tap, 0);
        assert_eq!(summary[0].count, 2);
        assert!((summary[0].mean - 2.0).abs() < 1e-9);
        assert!((summary[0].variance - 1.0).abs() < 1e-9);
        assert_eq!(summary[1].tap, 2);
        assert!((summary[1].max - 5.0).abs() < f32::EPSILON);
    }

    #[test]
    fn sample_scope_gates_spans_but_not_telemetry() {
        let _g = locked();
        reset();
        {
            let _out = sample_scope(false);
            span!("t.sampled_out");
            record_raw("t.sampled_out_raw", 0, 5);
            record_discrepancy(3, 2.0); // telemetry is never sampled out
        }
        {
            let _in = sample_scope(true);
            span!("t.sampled_in");
        }
        {
            span!("t.after_scope"); // suppression must not leak past the guard
        }
        assert!(my_lane_spans("t.sampled_out").is_empty());
        assert_eq!(my_lane_spans("t.sampled_in").len(), 1);
        assert_eq!(my_lane_spans("t.after_scope").len(), 1);
        let summary = discrepancy_summary();
        let tap3 = summary.iter().find(|t| t.tap == 3).expect("tap 3 recorded");
        assert_eq!(tap3.count, 1);
        // Sampling is intentional omission, not data loss.
        assert_eq!(snapshot().dropped, 0);
    }

    #[test]
    fn sample_scopes_nest_outer_suppression_wins() {
        let _g = locked();
        reset();
        {
            let _outer = sample_scope(false);
            {
                // An inner "record" scope cannot resurrect a request the
                // outer scope sampled out.
                let _inner = sample_scope(true);
                span!("t.nested_suppressed");
            }
        }
        assert!(my_lane_spans("t.nested_suppressed").is_empty());
    }

    #[test]
    fn events_chain_causally_and_respect_sampling() {
        let _g = locked();
        reset();
        let trace = TraceId::from_seq(41);
        let root = record_event("t.ev_enqueued", trace, EventRef::NONE, 0);
        assert_ne!(root, EventRef::NONE);
        let next = record_event("t.ev_dequeued", trace, root, 4);
        assert_ne!(next, EventRef::NONE);
        let events: Vec<_> = snapshot()
            .lanes
            .into_iter()
            .flat_map(|l| l.spans)
            .filter(|s| s.name.starts_with("t.ev_"))
            .collect();
        assert_eq!(events.len(), 2, "{events:?}");
        let enq = events
            .iter()
            .find(|e| e.name == "t.ev_enqueued")
            .expect("enqueued recorded");
        let deq = events
            .iter()
            .find(|e| e.name == "t.ev_dequeued")
            .expect("dequeued recorded");
        assert!(enq.is_event && deq.is_event);
        assert_eq!(enq.trace, trace.0);
        assert_eq!(deq.trace, trace.0);
        assert_eq!(enq.parent, 0, "chain root has no parent");
        assert_eq!(deq.parent, enq.event_ref(), "child points at the root");
        assert_eq!(deq.arg, 4);
        assert_eq!(enq.dur_ns, 0, "instant events have no duration");

        // Sampled out: nothing recorded, NONE returned, chain stays inert.
        reset();
        {
            let _out = sample_scope(false);
            let e = record_event("t.ev_suppressed", trace, EventRef::NONE, 0);
            assert_eq!(e, EventRef::NONE);
        }
        assert!(my_lane_spans("t.ev_suppressed").is_empty());
        assert_eq!(snapshot().dropped, 0, "sampling is not data loss");
    }

    #[test]
    fn plain_spans_carry_no_trace_identity() {
        let _g = locked();
        reset();
        span!("t.plain");
        record_raw("t.plain_raw", 5, 9);
        for s in my_lane_spans("t.plain") {
            assert!(!s.is_event);
            assert_eq!(s.trace, 0);
            assert_eq!(s.parent, 0);
            assert_eq!(s.arg, 0);
        }
    }

    #[test]
    fn spans_from_other_threads_get_their_own_lane() {
        let _g = locked();
        reset();
        std::thread::Builder::new()
            .name("t-worker-lane".to_string())
            .spawn(|| {
                span!("t.other_thread");
            })
            .expect("spawn must succeed")
            .join()
            .expect("worker must not panic");
        let snap = snapshot();
        let lane = snap
            .lanes
            .iter()
            .find(|l| l.spans.iter().any(|s| s.name == "t.other_thread"))
            .expect("worker lane must exist");
        assert_eq!(lane.thread_name, "t-worker-lane");
    }
}
