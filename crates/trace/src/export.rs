//! Exporters: chrome://tracing JSON, flat metrics JSON, and per-stage
//! self-time totals.
//!
//! All exporters are pure functions over snapshots, so they can run in
//! any process state and are trivially testable. JSON is emitted by
//! hand — this crate is dependency-free — and kept to the subset the
//! chrome://tracing / Perfetto loaders and jq-style tooling consume.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::causal::stitch;
use crate::metric::{MetricValue, MetricsRegistry};
use crate::span::TraceSnapshot;

/// Serialises a [`TraceSnapshot`] in chrome://tracing "trace event"
/// format: one complete (`ph: "X"`) event per duration span, one
/// instant (`ph: "i"`) event per lifecycle event, one process, one
/// `tid` per thread lane, with thread-name metadata events so Perfetto
/// labels each lane with its Crew worker name. Timestamps are
/// microseconds from the trace epoch.
///
/// Request-scoped lifecycle events additionally emit chrome *flow*
/// events — `ph: "s"` at a trace's first event, `"t"` steps, and a
/// terminating `"f"` — keyed by `id` = the trace id, so the viewer
/// draws an arrow following each request across thread lanes.
#[must_use]
pub fn chrome_trace_json(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(snap.span_count() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for lane in &snap.lanes {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
            lane.lane,
            json_string(&lane.thread_name)
        );
        for s in &lane.spans {
            if s.is_event {
                let _ = write!(
                    out,
                    ",{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"cat\":\"dv\",\"name\":{},\"ts\":{},\"args\":{{\"seq\":{},\"trace\":{},\"parent\":{},\"arg\":{}}}}}",
                    lane.lane,
                    json_string(s.name),
                    micros(s.start_ns),
                    s.seq,
                    s.trace,
                    s.parent,
                    s.arg
                );
            } else {
                let _ = write!(
                    out,
                    ",{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"cat\":\"dv\",\"name\":{},\"ts\":{},\"dur\":{},\"args\":{{\"seq\":{},\"depth\":{}}}}}",
                    lane.lane,
                    json_string(s.name),
                    micros(s.start_ns),
                    micros(s.dur_ns),
                    s.seq,
                    s.depth
                );
            }
        }
    }
    for tl in stitch(snap) {
        if tl.events.len() < 2 {
            continue;
        }
        for (i, e) in tl.events.iter().enumerate() {
            let ph = if i == 0 {
                "s"
            } else if i + 1 == tl.events.len() {
                "f"
            } else {
                "t"
            };
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"{ph}\",{}\"pid\":1,\"tid\":{},\"cat\":\"dv.flow\",\"name\":\"dv.request\",\"id\":{},\"ts\":{}}}",
                if ph == "f" { "\"bp\":\"e\"," } else { "" },
                e.lane,
                tl.trace,
                micros(e.ts_ns)
            );
        }
    }
    let _ = write!(
        out,
        "],\"otherData\":{{\"dropped_spans\":{}}}}}",
        snap.dropped
    );
    out
}

/// Serialises a registry snapshot as one flat JSON object, keys sorted:
/// counters and gauges as numbers, histograms as `{count, sum, mean,
/// min, max, p50, p90, p95, p99, p999}` objects (`mean` is exact, the
/// quantiles interpolate within their bucket and clamp to min/max).
#[must_use]
pub fn metrics_json(reg: &MetricsRegistry) -> String {
    let entries = reg.snapshot();
    let mut out = String::with_capacity(entries.len() * 48 + 16);
    out.push_str("{\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(out, "  {}: ", json_string(e.name));
        match &e.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                let _ = write!(out, "{v}");
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{},\"p999\":{}}}",
                    h.count, h.sum, h.mean(), h.min, h.max, h.p50, h.p90, h.p95, h.p99, h.p999
                );
            }
        }
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push('}');
    out
}

/// Aggregate time per span name, with self-time (time not covered by
/// child spans on the same lane).
#[derive(Debug, Clone)]
pub struct StageTotal {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub calls: u64,
    /// Total (inclusive) nanoseconds across those spans.
    pub total_ns: u64,
    /// Exclusive nanoseconds: total minus time covered by nested spans.
    pub self_ns: u64,
}

/// Folds a snapshot into per-name totals, sorted by self-time
/// descending.
///
/// Self-time is reconstructed per lane from span containment: spans are
/// scanned in start order with a stack; a span contained in the one
/// below it on the stack bills its duration against the parent's
/// self-time. Under a single root span the self-times of all stages sum
/// exactly to the root's inclusive time, which is what makes the
/// per-stage table in `BENCH_trace.json` add up to wall time.
#[must_use]
pub fn stage_totals(snap: &TraceSnapshot) -> Vec<StageTotal> {
    struct Frame<'a> {
        name: &'a str,
        end_ns: u64,
        dur_ns: u64,
        child_ns: u64,
    }
    /// Bills a popped frame's exclusive time into the totals map.
    fn fold<'a>(map: &mut BTreeMap<&'a str, (u64, u64, u64)>, f: Frame<'a>) {
        let e = map.entry(f.name).or_insert((0, 0, 0));
        e.2 += f.dur_ns.saturating_sub(f.child_ns);
    }
    // name -> (calls, total, self)
    let mut map: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for lane in &snap.lanes {
        let mut stack: Vec<Frame<'_>> = Vec::new();
        // Instant lifecycle events are identity markers, not time: they
        // must not perturb the self-time partition invariant.
        for s in lane.spans.iter().filter(|s| !s.is_event) {
            while let Some(top) = stack.last() {
                if s.start_ns >= top.end_ns {
                    let f = stack.pop().expect("stack.last() was Some");
                    fold(&mut map, f);
                } else {
                    break;
                }
            }
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += s.dur_ns;
            }
            let e = map.entry(s.name).or_insert((0, 0, 0));
            e.0 += 1;
            e.1 += s.dur_ns;
            stack.push(Frame {
                name: s.name,
                end_ns: s.start_ns.saturating_add(s.dur_ns),
                dur_ns: s.dur_ns,
                child_ns: 0,
            });
        }
        while let Some(f) = stack.pop() {
            fold(&mut map, f);
        }
    }
    let mut out: Vec<StageTotal> = map
        .into_iter()
        .map(|(name, (calls, total_ns, self_ns))| StageTotal {
            name: name.to_string(),
            calls,
            total_ns,
            self_ns,
        })
        .collect();
    out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
    out
}

/// Nanoseconds rendered as microseconds with sub-ns digits preserved.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Minimal JSON string encoder (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{LaneSnapshot, SpanRecord};

    fn span(name: &'static str, start_ns: u64, dur_ns: u64, depth: u32, seq: u64) -> SpanRecord {
        SpanRecord {
            name,
            seq,
            depth,
            start_ns,
            dur_ns,
            trace: 0,
            parent: 0,
            arg: 0,
            is_event: false,
        }
    }

    fn event(name: &'static str, ts_ns: u64, seq: u64, trace: u64, parent: u64) -> SpanRecord {
        SpanRecord {
            name,
            seq,
            depth: 0,
            start_ns: ts_ns,
            dur_ns: 0,
            trace,
            parent,
            arg: 0,
            is_event: true,
        }
    }

    fn snap(spans: Vec<SpanRecord>) -> TraceSnapshot {
        TraceSnapshot {
            lanes: vec![LaneSnapshot {
                lane: 0,
                thread_name: "main".to_string(),
                spans,
            }],
            dropped: 0,
        }
    }

    #[test]
    fn stage_totals_self_time_sums_to_root() {
        // root [0, 1000); child a [100, 400); child b [500, 800);
        // grandchild c inside a [200, 300).
        let s = snap(vec![
            span("root", 0, 1000, 0, 3),
            span("a", 100, 300, 1, 1),
            span("c", 200, 100, 2, 0),
            span("b", 500, 300, 1, 2),
        ]);
        let totals = stage_totals(&s);
        let get = |n: &str| {
            totals
                .iter()
                .find(|t| t.name == n)
                .unwrap_or_else(|| panic!("missing stage {n}"))
                .clone()
        };
        assert_eq!(get("root").total_ns, 1000);
        assert_eq!(get("root").self_ns, 1000 - 300 - 300);
        assert_eq!(get("a").self_ns, 300 - 100);
        assert_eq!(get("c").self_ns, 100);
        assert_eq!(get("b").self_ns, 300);
        let self_sum: u64 = totals.iter().map(|t| t.self_ns).sum();
        assert_eq!(self_sum, 1000, "self-times partition the root span");
    }

    #[test]
    fn stage_totals_aggregates_repeated_names() {
        let s = snap(vec![
            span("root", 0, 100, 0, 2),
            span("step", 0, 30, 1, 0),
            span("step", 40, 30, 1, 1),
        ]);
        let totals = stage_totals(&s);
        let step = totals
            .iter()
            .find(|t| t.name == "step")
            .expect("step stage must exist");
        assert_eq!(step.calls, 2);
        assert_eq!(step.total_ns, 60);
        assert_eq!(step.self_ns, 60);
    }

    #[test]
    fn chrome_trace_is_balanced_and_names_escaped() {
        let mut s = snap(vec![span("matmul", 1500, 2500, 0, 0)]);
        s.lanes[0].thread_name = "crew \"0\"\n".to_string();
        let json = chrome_trace_json(&s);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert!(json.contains("\"name\":\"matmul\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.500"));
        assert!(json.contains("crew \\\"0\\\"\\n"));
        assert!(json.contains("\"dropped_spans\":0"));
    }

    #[test]
    fn instant_events_export_as_i_phase_with_flow_arrows() {
        // Trace 5's three events span two lanes; the flow triple must be
        // s → t → f under one id, and the events ph:"i" with trace args.
        let s = TraceSnapshot {
            lanes: vec![
                LaneSnapshot {
                    lane: 0,
                    thread_name: "client".to_string(),
                    spans: vec![event("serve.enqueued", 100, 1, 5, 0)],
                },
                LaneSnapshot {
                    lane: 3,
                    thread_name: "worker".to_string(),
                    spans: vec![
                        event("serve.dequeued", 300, 2, 5, 2),
                        event("serve.responded", 900, 3, 5, 3),
                        span("serve.batch", 300, 600, 0, 4),
                    ],
                },
            ],
            dropped: 0,
        };
        let json = chrome_trace_json(&s);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"t\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 1);
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\""));
        assert_eq!(json.matches("\"id\":5").count(), 3, "flow keyed by trace");
        assert!(json.contains("\"trace\":5"));
        // Events must not disturb the duration-span self-time partition.
        let totals = stage_totals(&s);
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].name, "serve.batch");
        assert_eq!(totals[0].self_ns, 600);
    }

    #[test]
    fn single_event_traces_emit_no_dangling_flow() {
        let s = snap(vec![event("serve.enqueued", 10, 0, 9, 0)]);
        let json = chrome_trace_json(&s);
        assert!(json.contains("\"ph\":\"i\""));
        assert!(!json.contains("\"ph\":\"s\""), "no flow start without end");
        assert!(!json.contains("\"ph\":\"f\""));
    }

    #[test]
    fn metrics_json_is_flat_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("z.count").add(7);
        reg.gauge("a.depth").set(3);
        reg.histogram("m.lat").record(10);
        let json = metrics_json(&reg);
        let a = json.find("\"a.depth\": 3").expect("gauge line");
        let m = json.find("\"m.lat\"").expect("histogram line");
        let z = json.find("\"z.count\": 7").expect("counter line");
        assert!(a < m && m < z, "keys must be sorted:\n{json}");
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"p50\":10"));
    }
}
