//! The one place the workspace reads a wall clock.
//!
//! dv-lint R8 (`raw-timing`) bans `std::time::Instant`/`SystemTime`
//! everywhere outside this crate and `crates/serve` (which owns deadline
//! arithmetic), so every reported duration — span, histogram sample, or
//! bench number — flows through the same monotonic source and cannot
//! drift apart from the exported metrics.

use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide epoch: the first call to [`now_ns`] pins it, and every
/// later read is an offset from that instant. Chrome-trace timestamps
/// from different threads therefore share one timeline.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds elapsed since the process-wide trace epoch.
///
/// Monotonic and shared across threads; the epoch is pinned lazily by
/// the first caller. Truncation to `u64` allows ~584 years of uptime.
#[must_use]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A monotonic stopwatch for bench binaries and harnesses.
///
/// This is the sanctioned replacement for ad-hoc `Instant::now()` pairs:
/// bench bins time with a `Stopwatch` and record into the
/// [`MetricsRegistry`](crate::MetricsRegistry), so the printed number and
/// the exported metric are the same measurement.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start_ns: u64,
}

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Self { start_ns: now_ns() }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        now_ns().saturating_sub(self.start_ns)
    }

    /// Microseconds elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        self.elapsed_ns() / 1_000
    }

    /// Milliseconds elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed_ms(&self) -> u64 {
        self.elapsed_ns() / 1_000_000
    }

    /// Seconds elapsed since [`Stopwatch::start`], as `f64`.
    #[must_use]
    pub fn elapsed_secs_f64(&self) -> f64 {
        self.elapsed_ns() as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a, "clock went backwards: {a} -> {b}");
    }

    #[test]
    fn stopwatch_units_are_consistent() {
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let ns = sw.elapsed_ns();
        assert!(ns >= 2_000_000, "slept 2ms but measured {ns}ns");
        assert!(sw.elapsed_us() >= ns / 1_000 - 1);
        assert!(sw.elapsed_secs_f64() > 0.0);
    }
}
