//! **deep-validation** — a Rust reproduction of *Deep Validation: Toward
//! Detecting Real-World Corner Cases for Deep Neural Networks*
//! (Wu, Xu, Zhong, Lyu, King — DSN 2019).
//!
//! Deep Validation monitors a running CNN classifier the way data
//! validation guards a traditional program: it learns the valid input
//! region of every hidden layer from the training data (one one-class
//! SVM per layer and class, [`dv_core`]'s Algorithm 1) and flags inputs
//! whose hidden representations drift out of those regions
//! (Algorithm 2). It detects *real-world corner cases* — naturally
//! transformed inputs like rotated, rescaled or re-lit images — that
//! fool the classifier but are invisible to accuracy metrics.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |--------|----------|
//! | [`trace`](mod@trace) | metrics registry, scoped spans, chrome-trace export |
//! | [`drift`] | streaming distribution-shift monitor over discrepancy streams |
//! | [`tensor`] | dense f32 tensors, matmul, im2col, binary IO |
//! | [`nn`] | CNN layers, training, probed inference |
//! | [`datasets`] | synthetic MNIST/CIFAR-10/SVHN stand-ins |
//! | [`imgops`] | metamorphic image transformations |
//! | [`ocsvm`] | ν one-class SVM with an SMO solver |
//! | [`core`] | Deep Validation itself |
//! | [`absint`] | interval/zonotope abstract interpretation over the inference plan |
//! | [`serve`] | fault-tolerant scoring frontend: deadlines, backpressure, degradation |
//! | [`detectors`] | feature-squeezing and KDE baselines |
//! | [`attacks`] | FGSM, BIM, JSMA, CW white-box attacks |
//! | [`eval`] | ROC-AUC, corner-case grid search, tables |
//! | [`bench`](mod@bench) | the experiment pipeline behind every table/figure |
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete program; the core flow is:
//!
//! ```no_run
//! use deep_validation::core::{DeepValidator, ValidatorConfig};
//! use deep_validation::datasets::DatasetSpec;
//! use deep_validation::imgops::Transform;
//! # fn train_model(ds: &deep_validation::datasets::Dataset) -> deep_validation::nn::Network {
//! #     unimplemented!()
//! # }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ds = DatasetSpec::SynthDigits.generate(7, 500, 100);
//! let mut net = train_model(&ds);
//! let validator = DeepValidator::fit(
//!     &mut net,
//!     &ds.train.images,
//!     &ds.train.labels,
//!     &ValidatorConfig::default(),
//! )?;
//! let clean = validator.discrepancy(&mut net, &ds.test.images[0]);
//! let rotated = Transform::Rotation { deg: 50.0 }.apply(&ds.test.images[0]);
//! let corner = validator.discrepancy(&mut net, &rotated);
//! println!("clean {} vs corner {}", clean.joint, corner.joint);
//! # Ok(())
//! # }
//! ```
//!
//! Run the paper's experiments with the `dv-bench` binaries:
//! `cargo run --release -p dv-bench --bin table6`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dv_absint as absint;
pub use dv_attacks as attacks;
pub use dv_bench as bench;
pub use dv_core as core;
pub use dv_datasets as datasets;
pub use dv_detectors as detectors;
pub use dv_drift as drift;
pub use dv_eval as eval;
pub use dv_imgops as imgops;
pub use dv_nn as nn;
pub use dv_ocsvm as ocsvm;
pub use dv_serve as serve;
pub use dv_tensor as tensor;
pub use dv_trace as trace;
